#include "core/twopath.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/counters.hpp"
#include "util/assert.hpp"

namespace rabid::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

TwoPathSearch::TwoPathSearch(const tile::TileGraph& g)
    : g_(g), field_(static_cast<std::size_t>(g.tile_count())) {
  // The per-tile coordinate table replaces coord_of() in the field's
  // push loop: same values, no div/mod per relaxation.
  coords_.reserve(static_cast<std::size_t>(g.tile_count()));
  for (tile::TileId t = 0; t < g.tile_count(); ++t) {
    coords_.push_back(g.coord_of(t));
  }
  // Pre-size both heaps from the graph so the searches never reallocate
  // mid-wavefront (kHeapRegrows counts any push that still does).
  heap_.reserve(static_cast<std::size_t>(g.tile_count()));
  field_heap_.reserve(static_cast<std::size_t>(g.tile_count()));
}

void TwoPathSearch::ensure_states(std::size_t n_states) {
  RABID_ASSERT_MSG(
      n_states <= static_cast<std::size_t>(
                      std::numeric_limits<std::int32_t>::max()),
      "(tile x L) state space exceeds the 31-bit label encoding");
  if (labels_.size() < n_states) {
    labels_.resize(n_states, Label{0.0, -2, 0});
  }
}

double TwoPathSearch::field_settle(tile::TileId t,
                                   std::span<const double> wire_cost) {
  const auto ti = static_cast<std::size_t>(t);
  while (field_[ti].settled != epoch_) {
    RABID_ASSERT_MSG(!field_heap_.empty(), "heuristic field ran dry");
    const FieldEntry top = field_heap_.pop();
    const auto ui = static_cast<std::size_t>(top.t);
    if (field_[ui].settled == epoch_) continue;  // stale heap entry
    field_[ui].settled = epoch_;
    const tile::TileGraph::Adjacency* adj = g_.adjacency(top.t);
    const int cnt = g_.adj_count(top.t);
    for (int k = 0; k < cnt; ++k) {
      const double nd =
          top.d + wire_cost[static_cast<std::size_t>(adj[k].edge)];
      const auto vi = static_cast<std::size_t>(adj[k].tile);
      FieldLabel& fl = field_[vi];
      if (fl.seen != epoch_ || nd < fl.dist) {
        fl.seen = epoch_;
        fl.dist = nd;
        const double bound =
            field_floor_ *
            static_cast<double>(geom::manhattan(coords_[vi], field_hot_));
        field_heap_.push({nd + bound, nd, adj[k].tile});
      }
    }
  }
  return field_[ti].dist;
}

TwoPathRoute TwoPathSearch::route(tile::TileId from, tile::TileId to,
                                  std::int32_t L,
                                  std::span<const double> wire_cost,
                                  std::span<const double> buffer_cost,
                                  double wire_weight, double buffer_weight,
                                  double astar_floor) {
  RABID_ASSERT(L >= 1);
  RABID_ASSERT(wire_weight >= 0.0 && buffer_weight >= 0.0);
  const auto n_tiles = static_cast<std::size_t>(g_.tile_count());
  // Power-of-two row stride: state = (tile << shift) | j.  The mapping
  // is strictly increasing in lexicographic (tile, j) exactly like the
  // old tile * L + j packing (j < L <= stride), so the heap's id
  // tie-break — and therefore every pop — is unchanged; decode becomes
  // shift/mask instead of div/mod.
  const std::uint32_t shift =
      L <= 1 ? 0U : std::bit_width(static_cast<std::uint32_t>(L - 1));
  const std::size_t jmask = (std::size_t{1} << shift) - 1;
  ensure_states(n_tiles << shift);
  ++epoch_;
  heap_.clear();
  auto state_of = [&](tile::TileId t, std::int32_t j) {
    return (static_cast<std::size_t>(t) << shift) |
           static_cast<std::size_t>(j);
  };
  auto seen = [&](std::size_t s) { return labels_[s].stamp == epoch_; };
  auto touch = [&](std::size_t s, double d, std::int32_t p) {
    labels_[s] = Label{d, p, epoch_};
  };

  // A* bound per *tile* (states of one tile share it): the exact wire-
  // only distance to the goal, settled lazily by a goal-rooted backward
  // Dijkstra (see the class comment for the admissibility argument).
  const bool use_h = astar_floor > 0.0;
  if (use_h) {
    field_heap_.clear();
    field_[static_cast<std::size_t>(to)].seen = epoch_;
    field_[static_cast<std::size_t>(to)].dist = 0.0;
    // Aim the field at the forward source: astar_floor is a lower bound
    // on every wire_cost entry, so floor * manhattan is consistent for
    // the field's own expansion (values stay exact, see field_settle).
    field_hot_ = g_.coord_of(from);
    field_floor_ = astar_floor;
    field_heap_.push(
        {field_floor_ * static_cast<double>(
                            geom::manhattan(g_.coord_of(to), field_hot_)),
         0.0, to});
  }
  const auto h_of = [&](tile::TileId t) -> double {
    if (!use_h) return 0.0;
    return wire_weight * field_distance(t, wire_cost);
  };

  // (tile x L) heap work, flushed to the registry once per search.
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;

  // Start at the tail with j = 0 (the tail end is an anchor; the exact
  // downstream slack is re-established by the net-wide re-buffering).
  const std::size_t start = state_of(from, 0);
  touch(start, 0.0, -1);
  heap_push({h_of(from), 0.0, start});
  ++pushes;

  // The heuristic is evaluated only when a relaxation actually improves
  // a label: h(t) is a fixed value per tile (the exact wire field), so
  // skipping it for rejected relaxations cannot change any pushed key —
  // it only avoids settling field tiles nobody ends up needing.
  auto relax = [&](std::size_t s, double d, std::size_t from_state,
                   tile::TileId t) {
    Label& lbl = labels_[s];
    if (lbl.stamp != epoch_ || d < lbl.dist) {
      lbl = Label{d, static_cast<std::int32_t>(from_state), epoch_};
      heap_push({d + h_of(t), d, s});
      ++pushes;
    }
  };

  std::size_t goal = static_cast<std::size_t>(-1);
  while (!heap_.empty()) {
    const Entry top = heap_pop();
    ++pops;
    const auto s = static_cast<std::size_t>(top.s);
    if (top.d > labels_[s].dist) continue;
    const auto t = static_cast<tile::TileId>(s >> shift);
    const auto j = static_cast<std::int32_t>(s & jmask);
    if (t == to) {
      goal = s;
      break;
    }
    // Buffer here: pay q(t), reset the run length.
    if (j > 0) {
      const double q = buffer_cost[static_cast<std::size_t>(t)];
      if (std::isfinite(q)) {
        relax(state_of(t, 0), top.d + buffer_weight * q, s, t);
      }
    }
    // Step to a neighbor if the length rule still allows it.
    if (j + 1 < L) {
      const tile::TileGraph::Adjacency* adj = g_.adjacency(t);
      const int cnt = g_.adj_count(t);
      for (int k = 0; k < cnt; ++k) {
        relax(state_of(adj[k].tile, j + 1),
              top.d + wire_weight *
                          wire_cost[static_cast<std::size_t>(adj[k].edge)],
              s, adj[k].tile);
      }
    }
  }

  if (obs::counting()) {
    obs::count(obs::Counter::kTwoPathSearches);
    obs::count(obs::Counter::kTwoPathHeapPushes, pushes);
    obs::count(obs::Counter::kTwoPathHeapPops, pops);
    obs::count(obs::Counter::kHeapRegrows,
               heap_.take_regrows() + field_heap_.take_regrows());
  }

  TwoPathRoute out;
  if (goal == static_cast<std::size_t>(-1)) {
    // The length rule made `to` unreachable (e.g. a blocked moat wider
    // than L).  Fall back to a pure-wire shortest path; the net will be
    // counted as a length failure by the re-buffering step.
    route::MazeRouter fallback(g_);
    out.tiles = fallback.shortest_path(from, to, wire_cost, astar_floor);
    out.cost = kInf;
    return out;
  }

  out.cost = labels_[goal].dist;
  std::size_t s = goal;
  tile::TileId last = tile::kNoTile;
  while (true) {
    const auto t = static_cast<tile::TileId>(s >> shift);
    if (t != last) {
      out.tiles.push_back(t);
      last = t;
    }
    if (labels_[s].prev < 0) break;
    s = static_cast<std::size_t>(labels_[s].prev);
  }
  std::reverse(out.tiles.begin(), out.tiles.end());
  RABID_ASSERT(out.tiles.front() == from && out.tiles.back() == to);
  return out;
}

TwoPathRoute route_two_path(const tile::TileGraph& g, tile::TileId from,
                            tile::TileId to, std::int32_t L,
                            std::span<const double> wire_cost,
                            std::span<const double> buffer_cost,
                            double wire_weight, double buffer_weight,
                            double astar_floor) {
  TwoPathSearch search(g);
  return search.route(from, to, L, wire_cost, buffer_cost, wire_weight,
                      buffer_weight, astar_floor);
}

TwoPathRoute route_two_path(const tile::TileGraph& g, tile::TileId from,
                            tile::TileId to, std::int32_t L,
                            const route::EdgeCostFn& wire_cost,
                            const buffer::TileCostFn& buffer_cost,
                            double wire_weight, double buffer_weight) {
  std::vector<double> wires(static_cast<std::size_t>(g.edge_count()));
  for (tile::EdgeId e = 0; e < g.edge_count(); ++e) {
    wires[static_cast<std::size_t>(e)] = wire_cost(e);
  }
  std::vector<double> sites(static_cast<std::size_t>(g.tile_count()));
  for (tile::TileId t = 0; t < g.tile_count(); ++t) {
    sites[static_cast<std::size_t>(t)] = buffer_cost(t);
  }
  return route_two_path(g, from, to, L, wires, sites, wire_weight,
                        buffer_weight, /*astar_floor=*/0.0);
}

TileTreeEditor::TileTreeEditor(const route::RouteTree& tree,
                               const tile::TileGraph& g)
    : g_(g),
      source_(tree.node(tree.root()).tile),
      sink_multiplicity_(static_cast<std::size_t>(g.tile_count()), 0),
      adj_(static_cast<std::size_t>(g.tile_count())) {
  for (const route::RouteNode& n : tree.nodes()) {
    if (n.parent != route::kNoNode) {
      add_arc(n.tile, tree.node(n.parent).tile);
    }
    if (n.sink_count > 0) {
      sink_multiplicity_[static_cast<std::size_t>(n.tile)] += n.sink_count;
    }
  }
}

void TileTreeEditor::add_arc(tile::TileId a, tile::TileId b) {
  RABID_ASSERT(g_.edge_between(a, b) != tile::kNoEdge);
  auto& na = adj_[static_cast<std::size_t>(a)];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;  // already
  na.push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
}

void TileTreeEditor::remove_arc(tile::TileId a, tile::TileId b) {
  auto& na = adj_[static_cast<std::size_t>(a)];
  const auto ia = std::find(na.begin(), na.end(), b);
  if (ia == na.end()) return;
  na.erase(ia);
  auto& nb = adj_[static_cast<std::size_t>(b)];
  nb.erase(std::find(nb.begin(), nb.end(), a));
}

void TileTreeEditor::remove_path(tile::TileId head,
                                 std::span<const tile::TileId> interior,
                                 tile::TileId tail) {
  tile::TileId prev = head;
  for (const tile::TileId t : interior) {
    remove_arc(prev, t);
    prev = t;
  }
  remove_arc(prev, tail);
}

void TileTreeEditor::add_path(std::span<const tile::TileId> tiles) {
  for (std::size_t i = 1; i < tiles.size(); ++i) {
    add_arc(tiles[i - 1], tiles[i]);
  }
}

bool TileTreeEditor::in_tree(tile::TileId t) const {
  return t == source_ || sink_multiplicity_[static_cast<std::size_t>(t)] > 0 ||
         !adj_[static_cast<std::size_t>(t)].empty();
}

route::RouteTree TileTreeEditor::rebuild(
    const std::function<bool(tile::TileId)>& keep) const {
  route::RouteTree tree(source_);
  // BFS from the source; arcs closing a cycle are dropped.
  std::queue<tile::TileId> frontier;
  frontier.push(source_);
  while (!frontier.empty()) {
    const tile::TileId u = frontier.front();
    frontier.pop();
    const route::NodeId un = tree.node_at(u);
    for (const tile::TileId v : adj_[static_cast<std::size_t>(u)]) {
      if (tree.contains(v)) continue;
      tree.add_child(un, v);
      frontier.push(v);
    }
  }

  // Attach sinks, then prune useless leaves bottom-up.  Pruning works on
  // a keep-set, then the tree is reassembled (RouteTree is append-only).
  const std::size_t n = tree.node_count();
  std::vector<std::int32_t> sinks_at(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const tile::TileId t = tree.node(static_cast<route::NodeId>(i)).tile;
    sinks_at[i] = sink_multiplicity_[static_cast<std::size_t>(t)];
  }
  for (std::size_t t = 0; t < sink_multiplicity_.size(); ++t) {
    RABID_ASSERT_MSG(sink_multiplicity_[t] == 0 ||
                         tree.contains(static_cast<tile::TileId>(t)),
                     "rebuild lost a sink tile");
  }

  std::vector<bool> kept(n, false);
  std::vector<std::int32_t> live_children(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    live_children[i] = static_cast<std::int32_t>(
        tree.node(static_cast<route::NodeId>(i)).children.size());
  }
  // Reverse index order == children first.
  for (std::size_t i = n; i-- > 0;) {
    const auto v = static_cast<route::NodeId>(i);
    kept[i] = sinks_at[i] > 0 || live_children[i] > 0 || v == tree.root() ||
              (keep && keep(tree.node(v).tile));
    if (!kept[i]) {
      const route::NodeId p = tree.node(v).parent;
      --live_children[static_cast<std::size_t>(p)];
    }
  }

  route::RouteTree pruned(source_);
  std::vector<route::NodeId> remap(n, route::kNoNode);
  remap[0] = pruned.root();
  for (std::size_t i = 1; i < n; ++i) {
    if (!kept[i]) continue;
    const route::RouteNode& node = tree.node(static_cast<route::NodeId>(i));
    const route::NodeId p = remap[static_cast<std::size_t>(node.parent)];
    RABID_ASSERT(p != route::kNoNode);
    remap[i] = pruned.add_child(p, node.tile);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int32_t s = 0; s < sinks_at[i]; ++s) {
      pruned.add_sink(remap[i]);
    }
  }
  return pruned;
}

}  // namespace rabid::core
