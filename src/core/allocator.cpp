#include "core/allocator.hpp"

#include "util/thread_pool.hpp"

namespace rabid::core {

std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kRabid: return "rabid";
    case Backend::kBbp: return "bbp";
    case Backend::kMcf: return "mcf";
  }
  return "unknown";
}

bool backend_from_name(std::string_view name, Backend* out) {
  if (name == "rabid") {
    *out = Backend::kRabid;
  } else if (name == "bbp") {
    *out = Backend::kBbp;
  } else if (name == "mcf") {
    *out = Backend::kMcf;
  } else {
    return false;
  }
  return true;
}

AuditOptions Allocator::audit_options() const { return {}; }

AuditReport Allocator::audit() const {
  return SolutionAuditor(design(), graph(), audit_options()).audit(nets());
}

RunReport Allocator::run_report() const { return build_run_report(*this); }

RunReport build_run_report(const Allocator& alloc) {
  return build_run_report_base(alloc.design(), alloc.graph(), alloc.threads(),
                               alloc.stage_history(),
                               alloc.timed_out() ? "timed_out" : "ok",
                               alloc.nets_cancelled(), alloc.last_audit());
}

RabidAllocator::RabidAllocator(const netlist::Design& design,
                               tile::TileGraph& graph, RabidOptions options)
    : rabid_(design, graph, std::move(options)) {}

AuditOptions RabidAllocator::audit_options() const {
  AuditOptions opt;
  opt.tech = rabid_.options().tech;
  opt.buffer_library = rabid_.options().buffer_library;
  // A deadline-cancelled run honestly leaves nets unrouted and
  // congestion unresolved (see Rabid::maybe_audit) — integrity checks
  // stay at full severity.
  if (rabid_.timed_out()) {
    opt.allow_unrouted = true;
    opt.wire_overflow_severity = AuditSeverity::kWarning;
  }
  return opt;
}

std::int32_t RabidAllocator::threads() const {
  return static_cast<std::int32_t>(
      util::resolve_thread_count(rabid_.options().threads));
}

}  // namespace rabid::core
