#include "core/congestion_post.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/twopath.hpp"
#include "route/maze.hpp"
#include "util/assert.hpp"

namespace rabid::core {

namespace {

/// Min-cost monotone staircase between two tiles under soft eq. (1)
/// costs; returns the tile path (both endpoints inclusive) and its cost.
std::pair<std::vector<tile::TileId>, double> best_monotone(
    const tile::TileGraph& g, tile::TileId from, tile::TileId to) {
  const geom::TileCoord a = g.coord_of(from);
  const geom::TileCoord b = g.coord_of(to);
  const std::int32_t nx = std::abs(b.x - a.x);
  const std::int32_t ny = std::abs(b.y - a.y);
  const std::int32_t sx = b.x >= a.x ? 1 : -1;
  const std::int32_t sy = b.y >= a.y ? 1 : -1;

  const auto w = static_cast<std::size_t>(nx) + 1;
  const auto h = static_cast<std::size_t>(ny) + 1;
  auto at = [&](std::size_t i, std::size_t j) { return j * w + i; };
  auto tile_of = [&](std::size_t i, std::size_t j) {
    return g.id_of({a.x + sx * static_cast<std::int32_t>(i),
                    a.y + sy * static_cast<std::int32_t>(j)});
  };

  std::vector<double> cost(w * h,
                           std::numeric_limits<double>::infinity());
  std::vector<std::uint8_t> from_x(w * h, 0);  // 1 = came via x-step
  cost[at(0, 0)] = 0.0;
  for (std::size_t j = 0; j < h; ++j) {
    for (std::size_t i = 0; i < w; ++i) {
      if (i + j == 0) continue;
      if (i > 0) {
        const tile::EdgeId e =
            g.edge_between(tile_of(i - 1, j), tile_of(i, j));
        const double c = cost[at(i - 1, j)] + route::soft_wire_cost(g, e);
        if (c < cost[at(i, j)]) {
          cost[at(i, j)] = c;
          from_x[at(i, j)] = 1;
        }
      }
      if (j > 0) {
        const tile::EdgeId e =
            g.edge_between(tile_of(i, j - 1), tile_of(i, j));
        const double c = cost[at(i, j - 1)] + route::soft_wire_cost(g, e);
        if (c < cost[at(i, j)]) {
          cost[at(i, j)] = c;
          from_x[at(i, j)] = 0;
        }
      }
    }
  }

  std::vector<tile::TileId> path;
  std::size_t i = w - 1, j = h - 1;
  path.push_back(tile_of(i, j));
  while (i + j > 0) {
    if (from_x[at(i, j)] != 0) {
      --i;
    } else {
      --j;
    }
    path.push_back(tile_of(i, j));
  }
  std::reverse(path.begin(), path.end());
  return {std::move(path), cost[at(w - 1, h - 1)]};
}

}  // namespace

CongestionPostResult minimize_congestion(tile::TileGraph& g,
                                         std::span<route::RouteTree> trees,
                                         std::int32_t max_passes,
                                         const PinnedFn& pinned) {
  CongestionPostResult result;
  result.before = g.stats();

  for (std::int32_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (std::size_t ti = 0; ti < trees.size(); ++ti) {
      route::RouteTree& tree = trees[ti];
      // Re-derive two-paths after each accepted swap on this net.
      bool net_changed = true;
      std::int32_t guard = 0;
      std::vector<std::pair<tile::TileId, tile::TileId>> done;
      while (net_changed && guard++ < 64) {
        net_changed = false;
        // Candidate runs: two-paths, split at pinned interior tiles
        // (e.g. tiles carrying this net's buffers) — those tiles become
        // fixed endpoints and the segments between them re-embed freely.
        std::vector<std::vector<tile::TileId>> runs;
        for (const route::RouteTree::TwoPath& tp : tree.two_paths()) {
          std::vector<tile::TileId> run{tree.node(tp.head).tile};
          for (const route::NodeId n : tp.interior) {
            const tile::TileId t = tree.node(n).tile;
            run.push_back(t);
            if (pinned && pinned(ti, t)) {
              runs.push_back(run);
              run = {t};
            }
          }
          run.push_back(tree.node(tp.tail).tile);
          runs.push_back(std::move(run));
        }

        for (const std::vector<tile::TileId>& old_path : runs) {
          const tile::TileId head = old_path.front();
          const tile::TileId tail = old_path.back();
          if (std::find(done.begin(), done.end(),
                        std::make_pair(head, tail)) != done.end()) {
            continue;
          }
          const auto len = static_cast<std::int32_t>(old_path.size()) - 1;
          const std::int32_t manh = g.tile_distance(head, tail);
          // Only monotone, bend-capable paths can be re-embedded at
          // constant length.
          if (len != manh || manh < 2) continue;
          const std::vector<tile::TileId> interior(old_path.begin() + 1,
                                                   old_path.end() - 1);
          for (std::size_t k = 1; k < old_path.size(); ++k) {
            g.remove_wire(g.edge_between(old_path[k - 1], old_path[k]));
          }
          double old_cost = 0.0;
          for (std::size_t k = 1; k < old_path.size(); ++k) {
            old_cost += route::soft_wire_cost(
                g, g.edge_between(old_path[k - 1], old_path[k]));
          }
          auto [new_path, new_cost] = best_monotone(g, head, tail);

          if (new_cost + 1e-12 < old_cost) {
            // Swap: restore the old usage, rebuild the tree around the
            // new path, and re-commit it wholesale.
            for (std::size_t k = 1; k < old_path.size(); ++k) {
              g.add_wire(g.edge_between(old_path[k - 1], old_path[k]));
            }
            tree.uncommit(g);
            TileTreeEditor editor(tree, g);
            editor.remove_path(head, interior, tail);
            editor.add_path(new_path);
            // Pinned tiles (buffer stubs) must survive the prune even
            // when they end a non-sink leaf.
            tree = editor.rebuild([&](tile::TileId t) {
              return pinned && pinned(ti, t);
            });
            tree.commit(g);
            ++result.replaced;
            net_changed = true;
            changed = true;
            done.emplace_back(head, tail);
            break;  // two-path list invalidated; re-derive
          }
          // Reject: restore usage.
          for (std::size_t k = 1; k < old_path.size(); ++k) {
            g.add_wire(g.edge_between(old_path[k - 1], old_path[k]));
          }
          done.emplace_back(head, tail);
        }
      }
    }
    if (!changed) break;
  }
  result.after = g.stats();
  return result;
}

}  // namespace rabid::core
