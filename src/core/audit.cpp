#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "buffer/brute_force.hpp"

namespace rabid::core {

namespace {

/// Recount scratch: per-edge wire usage and per-tile buffers over all
/// nets, rebuilt from nothing but the NetStates.
struct Recount {
  std::vector<std::int64_t> wire;
  std::vector<std::int64_t> buffers;
};

std::string net_label(const netlist::Design& design, netlist::NetId id) {
  return "net " + design.net(id).name;
}

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

void json_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << '"' << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan")) << '"';
  }
}

}  // namespace

std::string_view audit_check_name(AuditCheck check) {
  switch (check) {
    case AuditCheck::kTreeStructure: return "tree-structure";
    case AuditCheck::kPinEmbedding: return "pin-embedding";
    case AuditCheck::kBufferRefs: return "buffer-refs";
    case AuditCheck::kWireBooks: return "wire-books";
    case AuditCheck::kBufferBooks: return "buffer-books";
    case AuditCheck::kWireCapacity: return "wire-capacity";
    case AuditCheck::kBufferCapacity: return "buffer-capacity";
    case AuditCheck::kLengthRule: return "length-rule";
    case AuditCheck::kDelay: return "delay";
    case AuditCheck::kBufferTypes: return "buffer-types";
  }
  return "unknown";
}

std::size_t AuditReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [](const AuditViolation& v) {
                      return v.severity == AuditSeverity::kError;
                    }));
}

std::size_t AuditReport::warning_count() const {
  return violations.size() - error_count();
}

void AuditReport::merge(AuditReport other, std::string_view stage) {
  for (AuditViolation& v : other.violations) {
    v.stage = stage;
    violations.push_back(std::move(v));
  }
  checks_run += other.checks_run;
  nets_audited = std::max(nets_audited, other.nets_audited);
}

std::string AuditReport::summary() const {
  std::ostringstream out;
  if (clean() && warning_count() == 0) {
    out << "audit: clean (" << nets_audited << " nets, " << checks_run
        << " checks)";
    return out.str();
  }
  out << "audit: " << error_count() << " errors, " << warning_count()
      << " warnings (" << nets_audited << " nets, " << checks_run
      << " checks)";
  constexpr std::size_t kMaxLines = 40;
  for (std::size_t i = 0; i < violations.size() && i < kMaxLines; ++i) {
    const AuditViolation& v = violations[i];
    out << "\n  ["
        << (v.severity == AuditSeverity::kError ? "error" : "warn ") << ' '
        << audit_check_name(v.check) << ']';
    if (!v.stage.empty()) out << " stage " << v.stage;
    if (v.net >= 0) out << " net " << v.net;
    if (v.tile != tile::kNoTile) out << " tile " << v.tile;
    if (v.edge != tile::kNoEdge) out << " edge " << v.edge;
    out << ": " << v.detail << " (expected " << v.expected << ", actual "
        << v.actual << ')';
  }
  if (violations.size() > kMaxLines) {
    out << "\n  ... and " << violations.size() - kMaxLines << " more";
  }
  return out.str();
}

void AuditReport::write_json(std::ostream& out) const {
  out << "{\n  \"clean\": " << (clean() ? "true" : "false")
      << ",\n  \"errors\": " << error_count()
      << ",\n  \"warnings\": " << warning_count()
      << ",\n  \"checks_run\": " << checks_run
      << ",\n  \"nets_audited\": " << nets_audited
      << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const AuditViolation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"check\": \""
        << audit_check_name(v.check) << "\", \"severity\": \""
        << (v.severity == AuditSeverity::kError ? "error" : "warning")
        << "\", \"stage\": \"";
    json_escape(out, v.stage);
    out << "\", \"net\": " << v.net << ", \"tile\": " << v.tile
        << ", \"edge\": " << v.edge << ", \"expected\": ";
    json_number(out, v.expected);
    out << ", \"actual\": ";
    json_number(out, v.actual);
    out << ", \"detail\": \"";
    json_escape(out, v.detail);
    out << "\"}";
  }
  out << (violations.empty() ? "]" : "\n  ]") << "\n}\n";
}

SolutionAuditor::SolutionAuditor(const netlist::Design& design,
                                 const tile::TileGraph& graph,
                                 AuditOptions options)
    : design_(design), graph_(graph), options_(options) {}

void SolutionAuditor::audit_net(netlist::NetId id, const NetState& state,
                                AuditReport& report) const {
  const netlist::Net& net = design_.net(id);
  const route::RouteTree& tree = state.tree;
  auto violation = [&](AuditCheck check, double expected, double actual,
                       std::string detail, tile::TileId t = tile::kNoTile,
                       tile::EdgeId e = tile::kNoEdge) {
    report.violations.push_back({check, AuditSeverity::kError, id, t, e,
                                 expected, actual,
                                 net_label(design_, id) + ": " +
                                     std::move(detail),
                                 {}});
  };

  ++report.checks_run;
  if (tree.empty()) {
    report.violations.push_back(
        {AuditCheck::kTreeStructure,
         options_.allow_unrouted ? AuditSeverity::kWarning
                                 : AuditSeverity::kError,
         id, tile::kNoTile, tile::kNoEdge, 1.0, 0.0,
         net_label(design_, id) + ": net has no route",
         {}});
    return;
  }

  // --- tree structure: links, tiles, adjacency, reachability ----------
  const auto n = static_cast<route::NodeId>(tree.node_count());
  bool structure_ok = true;
  auto broken = [&](AuditCheck check, double expected, double actual,
                    std::string detail) {
    violation(check, expected, actual, std::move(detail));
    structure_ok = false;
  };

  ++report.checks_run;
  if (tree.node(tree.root()).parent != route::kNoNode) {
    broken(AuditCheck::kTreeStructure, route::kNoNode,
           tree.node(tree.root()).parent, "root has a parent");
  }
  for (route::NodeId v = 0; v < n; ++v) {
    const route::RouteNode& node = tree.node(v);
    report.checks_run += 2;
    if (node.tile < 0 || node.tile >= graph_.tile_count()) {
      broken(AuditCheck::kTreeStructure, graph_.tile_count() - 1, node.tile,
             "node tile out of range");
      continue;
    }
    if (v != tree.root()) {
      if (node.parent < 0 || node.parent >= n) {
        broken(AuditCheck::kTreeStructure, n - 1, node.parent,
               "node parent out of range");
        continue;
      }
      const route::RouteNode& parent = tree.node(node.parent);
      const auto listed = std::count(parent.children.begin(),
                                     parent.children.end(), v);
      if (listed != 1) {
        broken(AuditCheck::kTreeStructure, 1.0,
               static_cast<double>(listed),
               "node listed in parent's children != once");
      }
      if (parent.tile >= 0 && parent.tile < graph_.tile_count() &&
          graph_.edge_between(node.tile, parent.tile) == tile::kNoEdge) {
        broken(AuditCheck::kTreeStructure, 1.0,
               graph_.tile_distance(node.tile, parent.tile),
               "arc between non-adjacent tiles");
      }
    }
    for (const route::NodeId w : node.children) {
      ++report.checks_run;
      if (w < 0 || w >= n || tree.node(w).parent != v) {
        broken(AuditCheck::kTreeStructure, v, w < 0 || w >= n ? -1.0
                                                  : tree.node(w).parent,
               "child link without matching parent link");
      }
    }
  }

  // Unique tiles (a global route does not self-cross at tile level).
  {
    std::vector<tile::TileId> tiles;
    tiles.reserve(static_cast<std::size_t>(n));
    for (route::NodeId v = 0; v < n; ++v) tiles.push_back(tree.node(v).tile);
    std::sort(tiles.begin(), tiles.end());
    ++report.checks_run;
    const auto dup = std::adjacent_find(tiles.begin(), tiles.end());
    if (dup != tiles.end()) {
      broken(AuditCheck::kTreeStructure, 1.0, 2.0,
             "tile appears more than once in tree");
    }
  }

  // Reachability from the root through child links: with the link
  // consistency above this certifies connectivity and acyclicity.
  if (structure_ok) {
    std::vector<route::NodeId> stack = {tree.root()};
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    seen[static_cast<std::size_t>(tree.root())] = true;
    std::int64_t reached = 0;
    while (!stack.empty()) {
      const route::NodeId v = stack.back();
      stack.pop_back();
      ++reached;
      for (const route::NodeId w : tree.node(v).children) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
    ++report.checks_run;
    if (reached != n) {
      broken(AuditCheck::kTreeStructure, n, static_cast<double>(reached),
             "nodes unreachable from root (disconnected or cyclic)");
    }
  }

  // --- pin embedding: driver tile and per-tile sink counts ------------
  if (structure_ok) {
    const tile::TileId driver_tile = graph_.tile_at(net.source.location);
    ++report.checks_run;
    if (tree.node(tree.root()).tile != driver_tile) {
      violation(AuditCheck::kPinEmbedding, driver_tile,
                tree.node(tree.root()).tile, "root not at driver tile");
    }
    std::vector<std::pair<tile::TileId, std::int32_t>> expected;
    for (const netlist::Pin& pin : net.sinks) {
      const tile::TileId t = graph_.tile_at(pin.location);
      auto it = std::find_if(expected.begin(), expected.end(),
                             [&](const auto& p) { return p.first == t; });
      if (it == expected.end()) {
        expected.emplace_back(t, 1);
      } else {
        ++it->second;
      }
    }
    for (route::NodeId v = 0; v < n; ++v) {
      const route::RouteNode& node = tree.node(v);
      if (node.sink_count == 0) continue;
      ++report.checks_run;
      auto it = std::find_if(expected.begin(), expected.end(),
                             [&](const auto& p) {
                               return p.first == node.tile;
                             });
      const std::int32_t want = it == expected.end() ? 0 : it->second;
      if (node.sink_count != want) {
        violation(AuditCheck::kPinEmbedding, want, node.sink_count,
                  "sink count at tile disagrees with netlist", node.tile);
      }
      if (it != expected.end()) expected.erase(it);
    }
    for (const auto& [t, count] : expected) {
      ++report.checks_run;
      violation(AuditCheck::kPinEmbedding, count, 0.0,
                "netlist sinks at tile missing from tree", t);
    }
  }

  // --- buffer references (Fig. 8 roles) -------------------------------
  bool buffers_ok = structure_ok;
  for (const route::BufferPlacement& b : state.buffers) {
    ++report.checks_run;
    if (b.node < 0 || b.node >= n) {
      violation(AuditCheck::kBufferRefs, n - 1, b.node,
                "buffer at nonexistent node");
      buffers_ok = false;
      continue;
    }
    if (b.child != route::kNoNode &&
        (b.child < 0 || b.child >= n || tree.node(b.child).parent != b.node)) {
      violation(AuditCheck::kBufferRefs, b.node,
                b.child < 0 || b.child >= n ? -1.0
                                            : tree.node(b.child).parent,
                "decoupling buffer on a non-arc");
      buffers_ok = false;
    }
  }
  ++report.checks_run;
  if (!state.buffer_types.empty() &&
      state.buffer_types.size() != state.buffers.size()) {
    violation(AuditCheck::kBufferRefs,
              static_cast<double>(state.buffers.size()),
              static_cast<double>(state.buffer_types.size()),
              "buffer_types size != buffers size");
    buffers_ok = false;
  }

  // --- buffer type tags: re-derive each tag against the library -------
  // Tags the library doesn't know (e.g. vG power levels) legalize under
  // the library's first type; tags it *does* know must carry its own
  // electrical payload, and the per-type b(v) recount below holds the
  // tag array to exactly one type per placed buffer.
  std::vector<std::int32_t> lib_types;
  const bool tagged =
      !state.buffer_types.empty() &&
      state.buffer_types.size() == state.buffers.size();
  if (tagged) {
    const buffer::BufferLibrary& lib = options_.buffer_library;
    lib_types.reserve(state.buffer_types.size());
    std::vector<std::int64_t> per_type(lib.size() + 1, 0);  // last: unknown
    for (std::size_t k = 0; k < state.buffer_types.size(); ++k) {
      const timing::BufferType& tag = state.buffer_types[k];
      ++report.checks_run;
      if (tag.name.empty()) {
        violation(AuditCheck::kBufferTypes, 1.0, 0.0,
                  "buffer type tag " + std::to_string(k) + " has no name");
      }
      const std::int32_t t = lib.index_of(tag.name);
      lib_types.push_back(t < 0 ? 0 : t);
      ++per_type[t < 0 ? lib.size() : static_cast<std::size_t>(t)];
      if (t >= 0) {
        // A known name with foreign electrical numbers is a tampered or
        // stale tag: the sized delay evaluator would silently use it.
        const timing::BufferType want =
            lib.electrical_of(static_cast<std::size_t>(t));
        ++report.checks_run;
        if (tag.input_cap != want.input_cap ||
            tag.output_res != want.output_res || tag.size != want.size) {
          violation(AuditCheck::kBufferTypes, want.input_cap, tag.input_cap,
                    "tag '" + std::string(tag.name) +
                        "' disagrees with the library's electrical spec");
        }
      }
    }
    // b(v) recount per type: the typed counts must re-add to the net's
    // placement count (one tag, one buffer — no dangling/duplicated tags).
    std::int64_t typed_total = 0;
    for (const std::int64_t c : per_type) typed_total += c;
    ++report.checks_run;
    if (typed_total != static_cast<std::int64_t>(state.buffers.size())) {
      violation(AuditCheck::kBufferTypes,
                static_cast<double>(state.buffers.size()),
                static_cast<double>(typed_total),
                "per-type buffer recount != placements");
    }
  }

  // --- length rule: the #fails flag must be honest (Fig. 3) -----------
  if (buffers_ok) {
    const std::int32_t L = design_.length_limit(id);
    // Tagged nets legalize under per-type drive limits; untagged nets
    // under the plain unit rule (identical when the library is unit).
    const bool legal =
        tagged ? buffer::placement_is_legal_lib(tree, state.buffers,
                                                lib_types, L,
                                                options_.buffer_library)
               : buffer::placement_is_legal(tree, state.buffers, L);
    ++report.checks_run;
    if (legal != state.meets_length_rule) {
      violation(AuditCheck::kLengthRule, legal, state.meets_length_rule,
                legal ? "net satisfies L but is flagged as a failure"
                      : "net flagged ok but a gate drives > L tile-units");
    }
  }

  // --- delay: recompute Elmore from scratch and compare exactly --------
  if (buffers_ok && options_.check_delays) {
    const timing::Technology tech =
        timing::scaled_for_width(options_.tech, net.width);
    const timing::DelayResult fresh =
        state.buffer_types.empty()
            ? timing::evaluate_delay(tree, state.buffers, graph_, tech)
            : timing::evaluate_delay_sized(tree, state.buffers,
                                           state.buffer_types, graph_, tech);
    report.checks_run += 2;
    if (fresh.max_ps != state.delay.max_ps) {
      violation(AuditCheck::kDelay, fresh.max_ps, state.delay.max_ps,
                "committed max delay != recomputed");
    }
    if (fresh.sum_ps != state.delay.sum_ps) {
      violation(AuditCheck::kDelay, fresh.sum_ps, state.delay.sum_ps,
                "committed delay sum != recomputed");
    }
    ++report.checks_run;
    if (fresh.sink_delays_ps.size() != state.delay.sink_delays_ps.size()) {
      violation(AuditCheck::kDelay,
                static_cast<double>(fresh.sink_delays_ps.size()),
                static_cast<double>(state.delay.sink_delays_ps.size()),
                "per-sink delay count != recomputed");
    } else {
      for (std::size_t k = 0; k < fresh.sink_delays_ps.size(); ++k) {
        ++report.checks_run;
        if (fresh.sink_delays_ps[k] != state.delay.sink_delays_ps[k]) {
          violation(AuditCheck::kDelay, fresh.sink_delays_ps[k],
                    state.delay.sink_delays_ps[k],
                    "per-sink delay " + std::to_string(k) +
                        " != recomputed");
        }
      }
    }
  }
}

AuditReport SolutionAuditor::audit(std::span<const NetState> nets) const {
  AuditReport report;
  report.nets_audited = nets.size();
  ++report.checks_run;
  if (nets.size() != design_.nets().size()) {
    report.violations.push_back(
        {AuditCheck::kTreeStructure, AuditSeverity::kError, -1,
         tile::kNoTile, tile::kNoEdge,
         static_cast<double>(design_.nets().size()),
         static_cast<double>(nets.size()),
         "solution net count != design net count",
         {}});
    return report;
  }

  for (std::size_t i = 0; i < nets.size(); ++i) {
    audit_net(static_cast<netlist::NetId>(i), nets[i], report);
  }

  // --- ground-up recount of both books over all nets -------------------
  Recount recount;
  recount.wire.assign(static_cast<std::size_t>(graph_.edge_count()), 0);
  recount.buffers.assign(static_cast<std::size_t>(graph_.tile_count()), 0);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const NetState& state = nets[i];
    const route::RouteTree& tree = state.tree;
    const auto n = static_cast<route::NodeId>(tree.node_count());
    const std::int32_t width =
        design_.net(static_cast<netlist::NetId>(i)).width;
    for (route::NodeId v = 0; v < n; ++v) {
      const route::RouteNode& node = tree.node(v);
      if (node.parent == route::kNoNode || node.parent < 0 ||
          node.parent >= n) {
        continue;  // structural breakage already reported per net
      }
      const route::RouteNode& parent = tree.node(node.parent);
      if (node.tile < 0 || node.tile >= graph_.tile_count() ||
          parent.tile < 0 || parent.tile >= graph_.tile_count()) {
        continue;
      }
      const tile::EdgeId e = graph_.edge_between(node.tile, parent.tile);
      if (e != tile::kNoEdge) {
        recount.wire[static_cast<std::size_t>(e)] += width;
      }
    }
    for (const route::BufferPlacement& b : state.buffers) {
      if (b.node < 0 || b.node >= n) continue;
      const tile::TileId t = tree.node(b.node).tile;
      if (t >= 0 && t < graph_.tile_count()) {
        ++recount.buffers[static_cast<std::size_t>(t)];
      }
    }
  }

  // --- book reconciliation + capacity feasibility ----------------------
  for (tile::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const std::int64_t counted = recount.wire[static_cast<std::size_t>(e)];
    report.checks_run += 2;
    if (counted != graph_.wire_usage(e)) {
      report.violations.push_back(
          {AuditCheck::kWireBooks, AuditSeverity::kError, -1, tile::kNoTile,
           e, static_cast<double>(counted),
           static_cast<double>(graph_.wire_usage(e)),
           "declared w(e) != recount over all nets",
           {}});
    }
    if (counted > graph_.wire_capacity(e)) {
      report.violations.push_back(
          {AuditCheck::kWireCapacity, options_.wire_overflow_severity, -1,
           tile::kNoTile, e, static_cast<double>(graph_.wire_capacity(e)),
           static_cast<double>(counted), "w(e) exceeds W(e)",
           {}});
    }
  }
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    const std::int64_t counted = recount.buffers[static_cast<std::size_t>(t)];
    report.checks_run += 2;
    if (counted != graph_.site_usage(t)) {
      report.violations.push_back(
          {AuditCheck::kBufferBooks, AuditSeverity::kError, -1, t,
           tile::kNoEdge, static_cast<double>(counted),
           static_cast<double>(graph_.site_usage(t)),
           "declared b(v) != recount over all nets",
           {}});
    }
    if (counted > graph_.site_supply(t)) {
      report.violations.push_back(
          {AuditCheck::kBufferCapacity, options_.buffer_overflow_severity, -1,
           t,
           tile::kNoEdge, static_cast<double>(graph_.site_supply(t)),
           static_cast<double>(counted), "b(v) exceeds B(v)",
           {}});
    }
  }
  return report;
}

AuditReport audit_solution(const Rabid& rabid, AuditOptions options) {
  options.tech = rabid.options().tech;
  options.buffer_library = rabid.options().buffer_library;
  return SolutionAuditor(rabid.design(), rabid.graph(), options)
      .audit(rabid.nets());
}

AuditReport Rabid::audit() const { return audit_solution(*this); }

void Rabid::maybe_audit(const char* stage, bool final_stage) {
  if (options_.audit_level == AuditLevel::kOff) return;
  if (options_.audit_level == AuditLevel::kFinal && !final_stage) return;
  AuditOptions opt;
  opt.tech = options_.tech;
  opt.buffer_library = options_.buffer_library;
  // Stages 1-2 run before (or while) wire feasibility is being earned;
  // overload there is heuristic progress, not book corruption.
  if (!final_stage && (stage[0] == '1' || stage[0] == '2')) {
    opt.wire_overflow_severity = AuditSeverity::kWarning;
  }
  // A deadline-cancelled run is honest about what it skipped: unrouted
  // nets and unresolved congestion are expected partial-solution state,
  // not corruption — integrity checks stay at full severity.
  if (timed_out()) {
    opt.allow_unrouted = true;
    opt.wire_overflow_severity = AuditSeverity::kWarning;
  }
  AuditReport fresh = SolutionAuditor(design_, graph_, opt).audit(nets_);
  if (last_audit_ == nullptr) last_audit_ = std::make_shared<AuditReport>();
  last_audit_->merge(std::move(fresh), stage);
}

}  // namespace rabid::core
