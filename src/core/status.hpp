#pragma once

/// \file status.hpp
/// Structured, propagating errors for every entry point of the flow.
///
/// The library grew up on trusted research inputs, where an abort with a
/// line number was an acceptable answer to a malformed file.  A serving
/// stack cannot abort: a hostile circuit, an inconsistent tile graph, or
/// an unwritable output path must surface as a *value* the caller can
/// route, log, and map to an exit code.  Status is that value: a code, a
/// human-readable message, and (for parse errors) the offending input
/// line.
///
/// Result<T> is the success-or-Status sum type the checked parsers
/// return (netlist::read_design_checked, core::read_solution_checked,
/// core::read_checkpoint_manifest).  The legacy abort-on-error entry
/// points remain as thin wrappers for tests and research scripts.
///
/// This header is deliberately dependency-free (header-only, no link
/// target) so the lowest layers — netlist, tile — can return core
/// statuses without inverting the library layering.
///
/// Exit-code taxonomy (docs/ROBUSTNESS.md; enforced by rabid_cli and
/// tests/cli/exit_codes_test.py):
///   0  success
///   1  solution violations (audit failed)
///   2  usage error (bad flags)
///   3  input or I/O error (malformed circuit, unwritable output)
///   4  deadline exceeded (honest partial solution returned)

#include <cstdint>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace rabid::core {

enum class StatusCode : std::uint8_t {
  kOk,
  /// Malformed or semantically invalid input (parse errors, duplicate
  /// pins, inconsistent tile graphs, mismatched checkpoints).
  kInvalidInput,
  /// The filesystem said no: unopenable path, short write, failed rename.
  kIoError,
  /// The cooperative deadline expired before the work completed.
  kDeadlineExceeded,
  /// A caller violated an API precondition (e.g. resuming onto a graph
  /// whose usage books are not empty).
  kFailedPrecondition,
  /// A checkpoint whose books fingerprint no longer matches the live
  /// tile graph: the W(e)/B(v) capacities were perturbed (an ECO)
  /// between checkpoint and resume, so the snapshot's cost provenance
  /// is stale and resuming would quietly diverge.
  kStaleCheckpoint,
  /// An invariant the library itself is responsible for broke.
  kInternal,
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kStaleCheckpoint: return "stale-checkpoint";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// The error value.  `line` is the 1-based line of the offending input
/// when the error came from a parser (0 = not applicable); `context`
/// names the artifact ("design", "solution", "checkpoint manifest", a
/// file path) so a message is actionable without a stack trace.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message, std::string context = {},
         int line = 0)
      : code_(code),
        message_(std::move(message)),
        context_(std::move(context)),
        line_(line) {}

  static Status ok() { return Status(); }
  static Status invalid_input(std::string message, std::string context = {},
                              int line = 0) {
    return {StatusCode::kInvalidInput, std::move(message), std::move(context),
            line};
  }
  static Status io_error(std::string message, std::string context = {}) {
    return {StatusCode::kIoError, std::move(message), std::move(context)};
  }
  static Status deadline_exceeded(std::string message) {
    return {StatusCode::kDeadlineExceeded, std::move(message)};
  }
  static Status failed_precondition(std::string message) {
    return {StatusCode::kFailedPrecondition, std::move(message)};
  }
  static Status stale_checkpoint(std::string message,
                                 std::string context = {}) {
    return {StatusCode::kStaleCheckpoint, std::move(message),
            std::move(context)};
  }
  static Status internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }

  bool ok_status() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return ok_status(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::string& context() const { return context_; }
  int line() const { return line_; }

  /// "error[invalid-input] design line 12: malformed number '1e'"
  std::string to_string() const {
    if (ok_status()) return "ok";
    std::string out = "error[";
    out += status_code_name(code_);
    out += ']';
    if (!context_.empty()) {
      out += ' ';
      out += context_;
    }
    if (line_ > 0) {
      out += " line ";
      out += std::to_string(line_);
    }
    out += ": ";
    out += message_;
    return out;
  }

  /// The documented CLI exit code for this status (see file comment).
  int exit_code() const {
    switch (code_) {
      case StatusCode::kOk: return 0;
      case StatusCode::kDeadlineExceeded: return 4;
      case StatusCode::kInvalidInput:
      case StatusCode::kIoError:
      case StatusCode::kFailedPrecondition:
      case StatusCode::kStaleCheckpoint:
      case StatusCode::kInternal: return 3;
    }
    return 3;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string context_;
  int line_ = 0;
};

/// Success-or-Status.  A Result is either a value (status().ok_status())
/// or an error; value() on an error aborts (callers check first — the
/// whole point is that the *check* is now possible).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RABID_ASSERT_MSG(!status_.ok_status(),
                     "a Result error needs a non-ok Status");
  }

  bool ok() const { return status_.ok_status(); }
  explicit operator bool() const { return ok(); }
  const Status& status() const { return status_; }

  T& value() {
    RABID_ASSERT_MSG(ok(), "Result::value() on an error");
    return value_;
  }
  const T& value() const {
    RABID_ASSERT_MSG(ok(), "Result::value() on an error");
    return value_;
  }
  T&& take() {
    RABID_ASSERT_MSG(ok(), "Result::take() on an error");
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace rabid::core
