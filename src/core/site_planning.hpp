#pragma once

/// \file site_planning.hpp
/// The buffer-site *budgeting* workflow of Section I-B:
///
///   "To help decide the allocation of buffer sites to macros, one could
///    assume an infinite number of available buffer sites, run a buffer
///    allocation tool like RABID, and compute the number of buffers
///    inserted in each block.  Then, this number can be used to help
///    determine the actual number of buffer sites to allocate within the
///    block."
///
/// plan_buffer_sites() runs RABID against an unlimited-supply copy of
/// the tile graph, bins the inserted buffers by floorplan block (and the
/// channel space between blocks), and recommends a per-block site budget
/// with headroom — Table III's finding that "no more than one in every
/// five buffer sites occupied appears necessary" motivates the default
/// headroom factor of 5.

#include <vector>

#include "core/rabid.hpp"
#include "netlist/design.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::core {

/// Buffer demand attributed to one block (or to the channels).
struct BlockDemand {
  netlist::BlockId block = netlist::kNoBlock;  ///< kNoBlock == channels
  std::int64_t buffers = 0;          ///< buffers RABID put inside it
  double area_um2 = 0.0;             ///< block (or channel) area
  std::int64_t recommended_sites = 0;  ///< buffers x headroom
  /// Fraction of the block's area the recommendation occupies.
  double area_fraction(double site_area_um2) const {
    return area_um2 > 0.0
               ? static_cast<double>(recommended_sites) * site_area_um2 /
                     area_um2
               : 0.0;
  }
};

struct SitePlan {
  std::vector<BlockDemand> demand;  ///< one entry per block + channels last
  std::int64_t total_buffers = 0;
  std::int64_t total_recommended = 0;
  StageStats planning_stats;  ///< the unlimited-supply RABID run's result
};

/// Runs the unlimited-site planning flow.  `prototype` supplies the
/// tiling and wire capacities; its buffer-site supplies are ignored
/// (every tile gets an effectively unlimited count).  Requires
/// headroom >= 1.
SitePlan plan_buffer_sites(const netlist::Design& design,
                           const tile::TileGraph& prototype,
                           double headroom = 5.0,
                           RabidOptions options = {});

/// Distributes a site plan back onto a tile graph: each tile receives
/// the share of its covering block's recommendation (channel tiles share
/// the channel budget).  Overwrites `g`'s supplies.
void apply_site_plan(const SitePlan& plan, const netlist::Design& design,
                     tile::TileGraph& g);

}  // namespace rabid::core
