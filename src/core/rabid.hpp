#pragma once

/// \file rabid.hpp
/// The four-stage RABID heuristic (Section III): resource allocation for
/// buffer and interconnect distribution.
///
///   Stage 1  initial Steiner trees       (Prim-Dijkstra + overlap removal)
///   Stage 2  wire-congestion reduction   (Nair-style full rip-up/reroute)
///   Stage 3  buffer assignment           (length-based DP, eq. 2 costs)
///   Stage 4  post-processing             (two-path rip-up with joint
///                                         wire+buffer costs, re-buffering)
///
/// The driver owns per-net state (route tree, buffers, delays) and keeps
/// the tile graph's w(e)/b(v) books consistent at every step; stats()
/// emits exactly the columns of Table II.
///
/// Per-net work in Stages 1 and 3 (and every delay refresh) runs on a
/// fixed-size thread pool when RabidOptions::threads allows; all book
/// mutations stay serialized in the paper's net order, so the solution
/// is bit-identical at any thread count (see DESIGN.md, "Parallelism").

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "buffer/insertion.hpp"
#include "core/status.hpp"
#include "netlist/design.hpp"
#include "obs/counters.hpp"
#include "route/buffers.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"
#include "timing/delay.hpp"
#include "timing/tech.hpp"
#include "util/thread_pool.hpp"

namespace rabid::core {

struct AuditReport;      // core/audit.hpp
struct RunReport;        // core/run_report.hpp
struct LoadedSolution;   // core/solution_io.hpp

/// When the flow runs the independent SolutionAuditor (core/audit.hpp)
/// on its own solution.  Results accumulate in last_audit().
enum class AuditLevel {
  kOff,       ///< never (the default; audit() is always available)
  kFinal,     ///< once, after the last stage (stage 4 or rebuffering)
  kPerStage,  ///< after every stage, stamped with the stage label
};

/// Net processing order for Stage-3 buffer assignment.
enum class Stage3Order {
  kDescendingDelay,  ///< the paper's choice: worst nets claim sites first
  kAscendingDelay,
  kAsGiven,          ///< netlist order (what a naive tool would do)
};

/// Stage-2 routing engine.
enum class Stage2Mode {
  /// The paper's Nair-style full rip-up/reroute with eq. (1) costs.
  kRipUpReroute,
  /// PathFinder-style negotiated congestion (the "industrial global
  /// router" of the paper's future-work section; see route/negotiated.hpp).
  kNegotiated,
};

/// Wavefront expansion order for the rerouting stages (2 and 4).
enum class RouterHeuristic {
  /// Blind Dijkstra expansion — the paper-faithful reference mode.
  kDijkstra,
  /// A*-guided expansion: an admissible Manhattan-distance x min-edge-
  /// cost bound aims the wavefront at the remaining targets.  Path costs
  /// are provably identical to kDijkstra (the bound never overestimates);
  /// only tie-breaking among equal-cost routes can differ.
  kAStar,
};

struct RabidOptions {
  double pd_alpha = 0.4;        ///< Prim-Dijkstra trade-off (footnote 5)
  Stage2Mode stage2_mode = Stage2Mode::kRipUpReroute;
  /// Wavefront order for stages 2 and 4 (see RouterHeuristic).
  RouterHeuristic router_heuristic = RouterHeuristic::kAStar;
  /// Dirty-net filtering for Stage-2 rip-up: after the first full Nair
  /// pass, an iteration only rips up nets that cross an overflowed edge
  /// or an edge whose eq. (1) cost moved by more than
  /// stage2_dirty_threshold (relative) since the previous iteration
  /// began.  Off reproduces the paper-faithful reroute-everything loop.
  bool stage2_dirty_filter = true;
  double stage2_dirty_threshold = 0.05;
  /// Region sharding for Stage-2 rip-up: the grid is cut into K-by-K
  /// regions; nets whose current tree lies entirely inside one region
  /// are rerouted concurrently across regions, each shard's wavefront
  /// confined to its region (reads and writes touch only the region's
  /// interior edges, so shards are disjoint by construction — no locks,
  /// no atomics), then the boundary-crossing nets replay serially in
  /// net-id order.  With the dirty filter enabled the sharded engine is
  /// also overflow-selective from the start: iteration 0 rips up only
  /// nets riding an overflowed edge (the rest keep their stage-1
  /// trees), and a net still overflow-touching after iteration 0
  /// escalates to the unconfined boundary pass so a full region cannot
  /// trap it.  0 = the legacy serial loop, instruction for
  /// instruction (golden-pinned).  For a fixed K the solution is
  /// bit-identical at any thread count; it is NOT bit-identical to
  /// K = 0 — selectivity, confinement, and processing order
  /// legitimately differ, and both solutions are audit-clean.  Values
  /// above min(nx, ny) clamp.
  /// Applies to Stage2Mode::kRipUpReroute only (negotiated mode runs
  /// serial regardless).
  std::int32_t stage2_shards = 0;
  Stage3Order stage3_order = Stage3Order::kDescendingDelay;
  std::int32_t reroute_iterations = 3;      ///< Stage-2 cap (Section III-B)
  std::int32_t postprocess_iterations = 1;  ///< Stage-4 passes
  /// Stage-4 objective = wire_weight * eq.(1) + buffer_weight * eq.(2)
  /// (footnote 7: the paper simply adds them, i.e. 1.0/1.0, but "one
  /// could use any linear combination").
  double stage4_wire_weight = 1.0;
  double stage4_buffer_weight = 1.0;
  /// Runs the wirelength-neutral congestion post-pass (Section IV-C's
  /// Table-V step) at the end of stage 2, before any buffers exist.
  bool congestion_post_after_stage2 = false;
  /// Stage-1 alternative: nets with at most this many terminals get a
  /// provably minimum-wirelength Hanan-grid RSMT instead of the
  /// Prim-Dijkstra construction (0 = always PD).  Trades source-sink
  /// radius for wirelength; see the ablation bench.
  std::int32_t exact_steiner_max_terminals = 0;
  /// Worker threads for the per-net stages (Stage-1 tree construction,
  /// Stage-3 buffer DP, delay refreshes).  0 = one per hardware thread;
  /// 1 = today's serial code path, instruction for instruction.  Any
  /// value yields bit-identical solutions: per-net work runs in
  /// parallel, but tile-site/wire-usage commits stay serialized in the
  /// paper's net order.
  std::int32_t threads = 0;
  /// Wall-clock budget for the whole run, in milliseconds (0 = none).
  /// The clock starts when the Rabid instance is constructed.  Checked
  /// cooperatively — per net in stages 1/3/4 and the vG rebuffering,
  /// per pass in stage 2, and between stages — so an expired run stops
  /// at the next check and returns the best *legal* partial solution:
  /// already-processed nets keep their committed state, skipped nets
  /// keep their previous legal state (or stay unrouted, honestly
  /// flagged), the books stay exactly consistent, and timed_out() /
  /// nets_cancelled() report what happened.  Fractional values are
  /// honored (sub-millisecond budgets are real for fuzz-sized
  /// circuits).  Under a deadline the result depends on wall-clock
  /// timing, so the bit-identical-at-any-thread-count guarantee is
  /// deliberately waived for runs that actually time out.
  double deadline_ms = 0.0;
  /// Mid-stage-2 checkpoint cadence: when > 0 and checkpoint_dir is
  /// set, Stage 2 writes a resumable checkpoint (solution dump plus a
  /// Stage2Progress sidecar) after every this-many processed nets, so a
  /// multi-hour 100k/1M-net rip-up can be killed and resumed without
  /// redoing completed iterations.  The serial engine checkpoints at
  /// any net boundary; the sharded engine at iteration boundaries (a
  /// mid-parallel-pass capture would be racy), in both cases resuming
  /// bit-identically to the uninterrupted run given identical options.
  /// Write failures are reported on stderr but never abort the flow.
  std::int64_t checkpoint_every_nets = 0;
  /// Directory for checkpoint_every_nets writes (must already exist).
  std::string checkpoint_dir;
  /// Self-auditing: recompute every solution invariant from scratch at
  /// the chosen points and accumulate violations in last_audit().
  AuditLevel audit_level = AuditLevel::kOff;
  /// Observability (src/obs): off records nothing (the default, and
  /// required for the BENCH_baseline gate); counters feeds the registry
  /// catalogue; trace additionally records chrome-trace events.  The
  /// level is process-global — constructing a Rabid *raises* the
  /// registry to this level but never lowers it.
  obs::Level obs_level = obs::Level::kOff;
  timing::Technology tech = timing::kTech180nm;
  /// Planning buffer library for stages 3/4 (buffer/library.hpp).  The
  /// default single unit type reproduces the historical dense DP
  /// bit-for-bit; any other library routes per-net buffering through
  /// the dominance-pruned multi-type candidate engine, and NetState
  /// gains per-buffer type tags (delays then use the sized evaluator).
  buffer::BufferLibrary buffer_library{};
};

/// One Table II row: the state of the solution after a stage.
struct StageStats {
  std::string stage;
  double max_wire_congestion = 0.0;
  double avg_wire_congestion = 0.0;
  std::int64_t overflow = 0;
  double max_buffer_density = 0.0;
  double avg_buffer_density = 0.0;
  std::int64_t buffers = 0;
  std::int32_t failed_nets = 0;
  double wirelength_mm = 0.0;
  double max_delay_ps = 0.0;
  double avg_delay_ps = 0.0;
  /// Wall-clock seconds for the stage (the paper's "CPU" column).
  double cpu_s = 0.0;
  /// Worker threads the stage ran with (1 == the serial reference path);
  /// cpu_s at 1 thread over cpu_s at N threads is the stage's speedup.
  std::int32_t threads = 1;
};

/// Per-net solution state.
struct NetState {
  route::RouteTree tree;
  route::BufferList buffers;
  /// Library cell per placement; empty means "all unit buffers" (the
  /// default stage-3/4 path).  Filled by rebuffer_timing_driven(), and
  /// by stages 3/4 themselves when RabidOptions::buffer_library holds
  /// more than the unit type.
  std::vector<timing::BufferType> buffer_types;
  /// Length rule satisfied? (false == the net counts in "#fails")
  bool meets_length_rule = false;
  timing::DelayResult delay;
};

/// Mid-stage-2 resume point (RabidOptions::checkpoint_every_nets).
///
/// Bit-identical resume needs exactly the per-iteration state the loop
/// cannot rederive from the books mid-flight: the net order (fixed from
/// *stage-1* delays — delays recomputed from mid-stage trees would
/// reorder), the iteration-start cost snapshot driving the dirty-net
/// filter, the dirty mask itself, and the A* step floor at the instant
/// of capture (point refreshes only ever lower it, so a fresh
/// refresh_all() cannot reproduce it).  Everything else — cache values,
/// delays, length-rule flags — is a pure function of the restored books.
struct Stage2Progress {
  std::int32_t iteration = 0;  ///< iteration being (re)entered
  /// Next index into `order`.  0 = the iteration has not started
  /// (snapshot then holds the *previous* iteration's start costs, and
  /// edge_dirty/min_cost are unused); > 0 = mid-iteration (serial
  /// engine only; the sharded engine checkpoints at boundaries).
  std::int64_t next_pos = 0;
  std::vector<std::uint32_t> order;     ///< net ids, stage-1 delay order
  std::vector<double> snapshot;         ///< iteration-start eq.(1) costs
  std::vector<std::uint8_t> edge_dirty; ///< current iteration's mask
  double min_cost = 0.0;                ///< A* floor at capture
};

class Rabid {
 public:
  /// Binds to a design and a tile graph whose capacities/sites are set.
  /// The graph's usage books must be empty; Rabid owns them from here.
  Rabid(const netlist::Design& design, tile::TileGraph& graph,
        RabidOptions options = {});

  // Stages may be run individually (for ablation) or via run_all().
  StageStats run_stage1();
  StageStats run_stage2();
  StageStats run_stage3();
  StageStats run_stage4();
  /// Runs stages 1-4 and returns the four Table II rows.
  std::vector<StageStats> run_all();

  /// The paper's prescribed later-flow step (Section II): rips up the
  /// buffering of the `worst_nets` highest-delay nets and re-inserts
  /// buffers with the timing-driven van Ginneken algorithm [18] and the
  /// power-level library, honoring remaining site supply.  Requires
  /// stage 3.  Wire routes are untouched; the length rule may be
  /// knowingly traded for delay (flags are re-evaluated honestly).
  StageStats rebuffer_timing_driven(
      std::size_t worst_nets,
      const timing::BufferLibrary& lib =
          timing::BufferLibrary::standard_180nm(),
      bool use_inverters = false);

  const std::vector<NetState>& nets() const { return nets_; }
  const tile::TileGraph& graph() const { return graph_; }
  const netlist::Design& design() const { return design_; }
  const RabidOptions& options() const { return options_; }

  /// Runs the independent SolutionAuditor on the current solution
  /// (core/audit.hpp): recounts both books from the per-net states,
  /// re-verifies every tree, the length-rule flags, and the committed
  /// delays.  Pure; does not touch last_audit().
  AuditReport audit() const;
  /// Violations accumulated per RabidOptions::audit_level; nullptr until
  /// the first audited stage completes.
  const AuditReport* last_audit() const { return last_audit_.get(); }

  /// Current solution snapshot (stats of the live books).
  StageStats snapshot(std::string stage_name, double cpu_s) const;

  /// Every StageStats this instance produced, in execution order (the
  /// Table II rows a RunReport serializes; see core/run_report.hpp).
  const std::vector<StageStats>& stage_history() const {
    return stage_history_;
  }

  /// The structured run report for the current state: stage history,
  /// obs counter/histogram snapshot, utilization histograms, audit
  /// summary (defined in run_report.cpp; == build_run_report(*this)).
  RunReport run_report() const;

  /// True once the cooperative deadline (RabidOptions::deadline_ms)
  /// expired; the solution is the best legal partial state.
  bool timed_out() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }
  /// Net-processing steps skipped because the deadline expired (stage-1
  /// routings never built, stage-3 bufferings never attempted).  Nets
  /// skipped by stages 2/4/vG keep a complete earlier solution and are
  /// not counted.
  std::int64_t nets_cancelled() const { return nets_cancelled_; }

  /// Installs a previously dumped solution (core/solution_io.hpp) as
  /// the current state, as if the stages that produced it had just run:
  /// trees and buffers are committed to the books, stage-completion
  /// flags are set from `completed_stage` (1..4), and delays are
  /// re-evaluated under options_.tech.  Requires a fresh instance
  /// (no stage run yet, books empty).  On error the books are left
  /// untouched and a structured Status explains the mismatch — a
  /// hostile checkpoint cannot corrupt the instance.
  Status restore_solution(const LoadedSolution& solution,
                          int completed_stage);

  /// Installs a mid-stage-2 resume point (after restore_solution with
  /// completed_stage == 1): the next run_stage2() fast-forwards to it
  /// and completes bit-identically to the uninterrupted run, provided
  /// the options match the checkpointing run's.  Validated against the
  /// design and graph; a hostile sidecar yields an error, not a crash.
  Status restore_stage2_progress(Stage2Progress progress);
  /// The installed resume point, if any (consumed by run_stage2()).
  const Stage2Progress* stage2_progress() const {
    return stage2_progress_.get();
  }

  /// Recomputes every net's delay from its current tree + buffers.
  void refresh_delays();

  /// Exposed for tests: verifies tile-graph books match per-net state
  /// exactly (wire usage, buffer usage); aborts on mismatch.
  void check_books() const;

 private:
  /// Stage-3 core, shared with Stage 4's re-buffering: optimal buffers
  /// for one net under tile costs; updates books and the net state.
  /// `first_attempt`, when given, supplies a precomputed result for the
  /// first DP attempt (the speculative parallel path); it must have been
  /// computed against the exact q-costs the serial execution would see.
  void buffer_net(std::size_t index, const std::vector<double>& demand,
                  const buffer::InsertionResult* first_attempt = nullptr);

  /// Stage-1 construction for one net (PD/RSMT + embedding).  Pure:
  /// reads only the design and the graph's geometry, never its books.
  route::RouteTree build_net_tree(std::size_t index) const;

  /// Stage-3 buffer assignment over `order` with per-net DPs speculated
  /// across the pool and commits serialized in `order` (bit-identical to
  /// the serial loop).  `demand` is the live p(v) book.
  void assign_buffers_parallel(const std::vector<std::size_t>& order,
                               std::vector<double>& demand);

  /// Net indices ordered by current delay (ascending or descending).
  std::vector<std::size_t> nets_by_delay(bool ascending) const;

  /// Records the memory high-water gauges (peak RSS, tile graph, route
  /// trees) into the obs registry; called at every stage boundary.
  /// No-op when the registry is not counting.
  void record_memory_gauges() const;

  /// Cooperative deadline probe: false when no deadline is configured
  /// (one predictable branch — the bench-compare gate holds the
  /// no-deadline flow to within 2%); latches deadline_expired_ on first
  /// expiry.  Safe to call from pool workers.
  bool deadline_hit() {
    if (!has_deadline_) return false;
    if (deadline_expired_.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() >= deadline_) {
      if (!deadline_expired_.exchange(true, std::memory_order_relaxed)) {
        obs::count(obs::Counter::kDeadlineExpirations);
      }
      return true;
    }
    return false;
  }

  /// Runs the auditor per options_.audit_level and accumulates the
  /// report (defined in audit.cpp).  `final_stage` marks the flow's
  /// last committed solution, where capacity overload is an error
  /// rather than not-yet-resolved congestion.
  void maybe_audit(const char* stage, bool final_stage);

  const netlist::Design& design_;
  tile::TileGraph& graph_;
  RabidOptions options_;
  std::vector<NetState> nets_;
  /// Live only when options_.threads resolves to >= 2 workers.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Installed by restore_stage2_progress(); consumed (reset) by the
  /// next run_stage2().
  std::unique_ptr<Stage2Progress> stage2_progress_;
  /// shared_ptr so the header needs only the forward declaration.
  std::shared_ptr<AuditReport> last_audit_;
  std::vector<StageStats> stage_history_;
  bool stage1_done_ = false;
  bool stage3_done_ = false;
  /// Cooperative-deadline state (see RabidOptions::deadline_ms).
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  /// Latched on first expiry; atomic because pool workers probe it.
  /// The wrapper restores movability (Rabid is only ever moved between
  /// runs, never while workers are live, so a relaxed copy is safe).
  struct ExpiredFlag {
    std::atomic<bool> v{false};
    ExpiredFlag() = default;
    ExpiredFlag(ExpiredFlag&& o) noexcept
        : v(o.v.load(std::memory_order_relaxed)) {}
    ExpiredFlag& operator=(ExpiredFlag&& o) noexcept {
      v.store(o.v.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
      return *this;
    }
    bool load(std::memory_order order) const { return v.load(order); }
    bool exchange(bool desired, std::memory_order order) {
      return v.exchange(desired, order);
    }
  };
  ExpiredFlag deadline_expired_;
  /// Mutated only from serial sections.
  std::int64_t nets_cancelled_ = 0;
};

/// True when the buffered tree satisfies the net's length rule: every
/// gate (the driver or any inserted buffer) drives at most L tile-units
/// of interconnect.  The exact per-net check stages 1-4 apply; exported
/// so the incremental (ECO) planner can re-evaluate the flag for just
/// the nets it re-plans.
bool meets_length_rule(const route::RouteTree& tree,
                       const route::BufferList& buffers, std::int32_t L);

}  // namespace rabid::core
