#pragma once

/// \file validate.hpp
/// Boundary validation of a (design, tile graph) pair before planning.
/// The planner's internal asserts assume these hold; hostile callers and
/// fuzzed graphs go through here first so violations surface as a
/// structured Status instead of an abort mid-flow.

#include "core/status.hpp"
#include "netlist/design.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::core {

/// Checks that `graph` is a consistent, fresh planning substrate for
/// `design`: the design itself validates (netlist::validate_design), the
/// grid covers the outline so every pin maps to a tile, no tile carries
/// more buffers than sites (a B(v) < b(v) seed), and the usage books are
/// empty — a fresh run must start from zero w(e)/b(v).
Status validate_inputs(const netlist::Design& design,
                       const tile::TileGraph& graph);

}  // namespace rabid::core
