#pragma once

/// \file checkpoint.hpp
/// Stage-granular checkpoint/resume for the RABID flow.
///
/// A checkpoint directory holds one solution dump per completed stage
/// (`stage<k>.sol`, solution format v2) plus a `manifest.json`
/// ("rabid.checkpoint.v1") naming the design, the grid, and the latest
/// completed stage.  Every file is written to a `.tmp` sibling and
/// atomically renamed into place, so a crash mid-write can truncate at
/// most the `.tmp` file — the manifest never points at a torn dump.
///
/// Resume validates everything before touching the instance: the
/// manifest must parse, reference this design and grid, and the dump
/// must pass the strict solution reader and Rabid::restore_solution's
/// capacity dry-run.  A hostile or stale checkpoint yields a structured
/// error, never a corrupted flow.  See docs/ROBUSTNESS.md.

#include <string>
#include <string_view>

#include "core/status.hpp"

namespace rabid::tile {
class TileGraph;
}  // namespace rabid::tile

namespace rabid::core {

class Rabid;
struct Stage2Progress;  // core/rabid.hpp

/// FNV-1a-64 over the tile graph's *capacity* books — grid shape, every
/// W(e), every B(v) — rendered as 16 lowercase hex digits.  This is the
/// checkpoint's provenance stamp: a mid-stage-2 snapshot (cost array,
/// dirty mask, A* floor) is only meaningful against the exact books it
/// was computed from, so resume rejects a checkpoint whose fingerprint
/// no longer matches the live graph (error[stale-checkpoint], exit 3)
/// instead of producing a quietly divergent plan.  Usage is excluded on
/// purpose: resume replays usage from the dump onto empty books.
std::string books_fingerprint(const tile::TileGraph& g);

/// The parsed `manifest.json` of a checkpoint directory.
struct CheckpointManifest {
  /// Bumped when a field is renamed or re-shaped (never silently).
  static constexpr std::string_view kSchema = "rabid.checkpoint.v1";

  std::string design;   ///< design name the dump was written for
  std::int32_t nx = 0;  ///< tile grid the dump was written for
  std::int32_t ny = 0;
  int stage = 0;        ///< last completed stage (1..4)
  std::string solution_file;  ///< dump file name, relative to the dir
  /// Mid-stage-2 progress sidecar (RabidOptions::checkpoint_every_nets),
  /// relative to the dir; empty for stage-boundary checkpoints.  The
  /// dump then holds the mid-stage-2 trees with `stage` still 1.
  std::string stage2_progress_file;
  /// books_fingerprint() of the graph the checkpoint was written
  /// against (required; resume validates it before touching anything).
  std::string books_fingerprint;
};

/// Dumps the flow's current solution as the checkpoint for
/// `completed_stage` (1..4) and repoints the manifest at it.  The
/// directory must already exist.  On any I/O failure the previous
/// manifest (if any) is left intact.
Status write_checkpoint(const std::string& dir, const Rabid& rabid,
                        int completed_stage);

/// Dumps a mid-stage-2 checkpoint: the current solution (as the stage-1
/// dump `stage2_partial.sol`) plus the resume point (`stage2.progress`,
/// "rabid.stage2.progress.v1" — exact %.17g doubles, so costs round-trip
/// bit for bit).  Called by Rabid itself on the
/// RabidOptions::checkpoint_every_nets cadence.
Status write_stage2_checkpoint(const std::string& dir, const Rabid& rabid,
                               const Stage2Progress& progress);

/// Reads and validates `<dir>/manifest.json`.
Result<CheckpointManifest> read_checkpoint_manifest(const std::string& dir);

/// Restores `rabid` (a fresh instance) from the latest checkpoint in
/// `dir`.  On success `*completed_stage` (when non-null) receives the
/// stage the checkpoint covers, so the caller can run the remainder.
/// A mid-stage-2 checkpoint reports stage 1 and additionally installs
/// the resume point (Rabid::restore_stage2_progress), so the caller's
/// next run_stage2() continues where the interrupted run stopped.
Status resume_from_checkpoint(const std::string& dir, Rabid& rabid,
                              int* completed_stage = nullptr);

}  // namespace rabid::core
