#pragma once

/// \file twopath.hpp
/// Stage-4 machinery (Section III-D): editing a route tree one two-path
/// at a time, and the bottom-up cost-array path search that reconnects a
/// ripped-up two-path while minimizing wire congestion (eq. 1) plus
/// buffer-site cost (eq. 2) jointly.
///
/// The search runs Dijkstra over (tile, j) states, j being the wire
/// length since the last buffer (j < L).  Stepping an edge costs eq. (1)
/// and increments j; placing a buffer at a tile costs q(v) and resets
/// j to 0.  States whose j would reach L must buffer or die, so every
/// returned path can be legally buffered under the length rule.  The
/// buffers themselves are re-inserted net-wide afterwards (the paper does
/// the same); the search only has to find a corridor where both wire and
/// buffer capacity exist.

#include <functional>
#include <vector>

#include "buffer/insertion.hpp"
#include "route/maze.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::core {

/// Result of the (tile x L) Dijkstra: the tile path (from..to inclusive)
/// and its combined congestion cost.
struct TwoPathRoute {
  std::vector<tile::TileId> tiles;
  double cost = 0.0;
};

/// Finds the min-cost reconnection between two tiles.
/// `wire_cost`: per-edge cost (eq. 1, softened); `buffer_cost`: per-tile
/// q(v) (may be +inf); `L`: length rule for the net.  The objective is
/// wire_weight * wire + buffer_weight * buffer — footnote 7: the two
/// costs "are of the same order of magnitude, so we simply add their
/// costs. Alternatively, one could use any linear combination."
TwoPathRoute route_two_path(const tile::TileGraph& g, tile::TileId from,
                            tile::TileId to, std::int32_t L,
                            const route::EdgeCostFn& wire_cost,
                            const buffer::TileCostFn& buffer_cost,
                            double wire_weight = 1.0,
                            double buffer_weight = 1.0);

/// An editable tile-level tree: a RouteTree exploded into undirected
/// arcs, supporting two-path removal, path insertion, pruning of dangling
/// stubs, and reconstruction into a RouteTree.
class TileTreeEditor {
 public:
  TileTreeEditor(const route::RouteTree& tree, const tile::TileGraph& g);

  /// Removes the arcs of a two-path (interior tiles plus both boundary
  /// arcs). `interior` may be empty (single-arc two-path).
  void remove_path(tile::TileId head,
                   std::span<const tile::TileId> interior, tile::TileId tail);

  /// Adds the arcs of a tile path (consecutive tiles adjacent in g).
  void add_path(std::span<const tile::TileId> tiles);

  /// True if `t` currently has any arcs (or is the root/a sink).
  bool in_tree(tile::TileId t) const;

  /// Rebuilds a RouteTree: BFS from the source over the arc set (cycle
  /// arcs dropped), then iterative pruning of non-sink leaves.  Aborts if
  /// any sink became unreachable.  Tiles for which `keep` returns true
  /// are never pruned (e.g. stubs ending at a net's buffer tile).
  route::RouteTree rebuild(
      const std::function<bool(tile::TileId)>& keep = {}) const;

 private:
  const tile::TileGraph& g_;
  tile::TileId source_;
  std::vector<std::int32_t> sink_multiplicity_;  // per tile
  std::vector<std::vector<tile::TileId>> adj_;   // per tile
  void remove_arc(tile::TileId a, tile::TileId b);
  void add_arc(tile::TileId a, tile::TileId b);
};

}  // namespace rabid::core
