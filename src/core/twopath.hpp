#pragma once

/// \file twopath.hpp
/// Stage-4 machinery (Section III-D): editing a route tree one two-path
/// at a time, and the bottom-up cost-array path search that reconnects a
/// ripped-up two-path while minimizing wire congestion (eq. 1) plus
/// buffer-site cost (eq. 2) jointly.
///
/// The search runs Dijkstra over (tile, j) states, j being the wire
/// length since the last buffer (j < L).  Stepping an edge costs eq. (1)
/// and increments j; placing a buffer at a tile costs q(v) and resets
/// j to 0.  States whose j would reach L must buffer or die, so every
/// returned path can be legally buffered under the length rule.  The
/// buffers themselves are re-inserted net-wide afterwards (the paper does
/// the same); the search only has to find a corridor where both wire and
/// buffer capacity exist.

#include <functional>
#include <span>
#include <vector>

#include "buffer/insertion.hpp"
#include "route/maze.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"
#include "util/dheap.hpp"

namespace rabid::core {

/// Result of the (tile x L) Dijkstra: the tile path (from..to inclusive)
/// and its combined congestion cost.
struct TwoPathRoute {
  std::vector<tile::TileId> tiles;
  double cost = 0.0;
};

/// Finds the min-cost reconnection between two tiles.
/// `wire_cost`: per-edge cost (eq. 1, softened); `buffer_cost`: per-tile
/// q(v) (may be +inf); `L`: length rule for the net.  The objective is
/// wire_weight * wire + buffer_weight * buffer — footnote 7: the two
/// costs "are of the same order of magnitude, so we simply add their
/// costs. Alternatively, one could use any linear combination."
///
/// The span overload is the hot path: flat per-edge / per-tile cost
/// arrays (one load per relaxation), plus optional A* targeting.
/// `astar_floor > 0` (any positive value — pass e.g.
/// EdgeCostCache::min_cost()) enables the goal-rooted exact-wire-
/// distance heuristic described on TwoPathSearch; the returned cost is
/// provably identical either way.  0 disables the heuristic and
/// reproduces plain Dijkstra expansion order exactly.
TwoPathRoute route_two_path(const tile::TileGraph& g, tile::TileId from,
                            tile::TileId to, std::int32_t L,
                            std::span<const double> wire_cost,
                            std::span<const double> buffer_cost,
                            double wire_weight = 1.0,
                            double buffer_weight = 1.0,
                            double astar_floor = 0.0);

/// Callback convenience wrapper: materializes flat cost arrays once and
/// runs the span overload (identical results; used by tests and one-off
/// callers where the per-call O(V + E) evaluation is irrelevant).
TwoPathRoute route_two_path(const tile::TileGraph& g, tile::TileId from,
                            tile::TileId to, std::int32_t L,
                            const route::EdgeCostFn& wire_cost,
                            const buffer::TileCostFn& buffer_cost,
                            double wire_weight = 1.0,
                            double buffer_weight = 1.0);

/// Reusable (tile x L) search: all scratch — per-state distance/parent
/// labels, the heap's backing store, the heuristic field — lives in
/// stamped member arrays sized to the largest L seen, so a warm search
/// touches only the states the wavefront actually visits.  Stage 4 keeps
/// one TwoPathSearch alive across every two-path of every net.
///
/// With `astar_floor > 0` the search upgrades the Manhattan bound to the
/// *exact* wire-only distance-to-goal: a goal-rooted tile-level Dijkstra
/// over `wire_cost` (no length rule, no buffers) settled lazily, exactly
/// as far as the forward wavefront asks.  h(t) = wire_weight * that
/// distance is admissible (buffer costs are nonnegative and every legal
/// continuation is in particular a wire path) and consistent (a shortest
/// -path field obeys the triangle inequality edge by edge; buffering
/// keeps the tile, leaving h unchanged), so the returned cost is
/// identical to plain Dijkstra's — only equal-cost tie-breaking differs.
/// Results are identical to route_two_path() given the same arguments.
class TwoPathSearch {
 public:
  explicit TwoPathSearch(const tile::TileGraph& g);

  TwoPathRoute route(tile::TileId from, tile::TileId to, std::int32_t L,
                     std::span<const double> wire_cost,
                     std::span<const double> buffer_cost,
                     double wire_weight = 1.0, double buffer_weight = 1.0,
                     double astar_floor = 0.0);

 private:
  struct Entry {
    double key;  ///< d + heuristic; == d when A* is off
    double d;
    std::uint64_t s;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      return s > o.s;
    }
  };
  struct FieldEntry {
    double key;  ///< d + field A* bound; == d when the bound is off
    double d;
    tile::TileId t;
    bool operator>(const FieldEntry& o) const {
      if (key != o.key) return key > o.key;
      return t > o.t;
    }
  };

  /// Forward-search label, one 16-byte row per (tile, j) state so a
  /// relaxation touches a single cache line instead of three parallel
  /// arrays.  `prev` holds the predecessor *state* (-1 for the start,
  /// -2 for never-touched); 31 bits bound the state space at 2^31 rows,
  /// asserted in ensure_states.
  struct Label {
    double dist;
    std::int32_t prev;
    std::uint32_t stamp;
  };
  static_assert(sizeof(Label) == 16);

  /// Heuristic-field label, one 16-byte row per tile (same rationale).
  struct FieldLabel {
    double dist;
    std::uint32_t seen;
    std::uint32_t settled;
  };
  static_assert(sizeof(FieldLabel) == 16);

 public:
  /// Bytes held by the (tile x L) labels, the heuristic field, and both
  /// heaps' backing stores (obs memory.maze_scratch accounting).
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(labels_.capacity()) * sizeof(Label) +
           static_cast<std::uint64_t>(field_.capacity()) *
               sizeof(FieldLabel) +
           static_cast<std::uint64_t>(coords_.capacity()) *
               sizeof(geom::TileCoord) +
           static_cast<std::uint64_t>(heap_.capacity()) * sizeof(Entry) +
           static_cast<std::uint64_t>(field_heap_.capacity()) *
               sizeof(FieldEntry);
  }

 private:
  void ensure_states(std::size_t n_states);
  void heap_push(Entry e) { heap_.push(e); }
  Entry heap_pop() { return heap_.pop(); }
  /// Settles the goal-rooted wire-distance field up to `t` (lazy
  /// backward Dijkstra); returns the unweighted wire distance t -> goal.
  /// Called once per relaxation, so the settled case — by far the most
  /// common once the field has spread — must be a single stamped load.
  double field_distance(tile::TileId t, std::span<const double> wire_cost) {
    const FieldLabel& fl = field_[static_cast<std::size_t>(t)];
    if (fl.settled == epoch_) return fl.dist;
    return field_settle(t, wire_cost);
  }
  /// Out-of-line slow path of field_distance: pops the backward-Dijkstra
  /// heap until `t` is settled.
  double field_settle(tile::TileId t, std::span<const double> wire_cost);

  const tile::TileGraph& g_;
  std::vector<Label> labels_;
  std::uint32_t epoch_ = 0;
  util::DaryHeap<Entry> heap_;

  // Heuristic field scratch (per goal tile, stamped by epoch_).  The
  // field is itself an A* search aimed at the forward search's source:
  // with a consistent bound every settled tile's distance is exact (the
  // standard A* optimality argument), so the *values* the forward search
  // reads — and therefore its keys, pops, and routes — are identical to
  // a plain-Dijkstra field; only which tiles get settled (a corridor
  // goal -> source instead of a disk around the goal) changes.
  std::vector<FieldLabel> field_;
  std::vector<geom::TileCoord> coords_;  ///< per-tile coordinate table
  util::DaryHeap<FieldEntry> field_heap_;
  geom::TileCoord field_hot_{0, 0};  ///< forward source; field A* target
  double field_floor_ = 0.0;         ///< admissible per-step bound (0 = off)
};

/// An editable tile-level tree: a RouteTree exploded into undirected
/// arcs, supporting two-path removal, path insertion, pruning of dangling
/// stubs, and reconstruction into a RouteTree.
class TileTreeEditor {
 public:
  TileTreeEditor(const route::RouteTree& tree, const tile::TileGraph& g);

  /// Removes the arcs of a two-path (interior tiles plus both boundary
  /// arcs). `interior` may be empty (single-arc two-path).
  void remove_path(tile::TileId head,
                   std::span<const tile::TileId> interior, tile::TileId tail);

  /// Adds the arcs of a tile path (consecutive tiles adjacent in g).
  void add_path(std::span<const tile::TileId> tiles);

  /// True if `t` currently has any arcs (or is the root/a sink).
  bool in_tree(tile::TileId t) const;

  /// Rebuilds a RouteTree: BFS from the source over the arc set (cycle
  /// arcs dropped), then iterative pruning of non-sink leaves.  Aborts if
  /// any sink became unreachable.  Tiles for which `keep` returns true
  /// are never pruned (e.g. stubs ending at a net's buffer tile).
  route::RouteTree rebuild(
      const std::function<bool(tile::TileId)>& keep = {}) const;

 private:
  const tile::TileGraph& g_;
  tile::TileId source_;
  std::vector<std::int32_t> sink_multiplicity_;  // per tile
  std::vector<std::vector<tile::TileId>> adj_;   // per tile
  void remove_arc(tile::TileId a, tile::TileId b);
  void add_arc(tile::TileId a, tile::TileId b);
};

}  // namespace rabid::core
