#include "core/solution_io.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace rabid::core {

void write_solution(std::ostream& out, const netlist::Design& design,
                    const tile::TileGraph& g,
                    std::span<const NetState> nets) {
  RABID_ASSERT(nets.size() == design.nets().size());
  out << "# RABID solution format v1\n";
  out << "solution " << design.name() << ' ' << g.nx() << ' ' << g.ny()
      << '\n';
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const NetState& n = nets[i];
    out << "net " << design.net(static_cast<netlist::NetId>(i)).name << ' '
        << (n.meets_length_rule ? "ok" : "fail") << '\n';
    for (const route::RouteNode& node : n.tree.nodes()) {
      if (node.parent == route::kNoNode) continue;
      const geom::TileCoord a =
          g.coord_of(n.tree.node(node.parent).tile);
      const geom::TileCoord b = g.coord_of(node.tile);
      out << "  arc " << a.x << ' ' << a.y << ' ' << b.x << ' ' << b.y
          << '\n';
    }
    for (std::size_t k = 0; k < n.buffers.size(); ++k) {
      const route::BufferPlacement& b = n.buffers[k];
      const geom::TileCoord c = g.coord_of(n.tree.node(b.node).tile);
      out << "  buffer " << c.x << ' ' << c.y << ' '
          << (b.child == route::kNoNode ? "drive" : "decouple");
      if (k < n.buffer_types.size()) out << ' ' << n.buffer_types[k].name;
      out << '\n';
    }
    out << "end\n";
  }
}

std::int64_t SolutionSummary::total_arcs() const {
  std::int64_t total = 0;
  for (const NetSummary& n : nets) total += n.arcs;
  return total;
}

std::int64_t SolutionSummary::total_buffers() const {
  std::int64_t total = 0;
  for (const NetSummary& n : nets) total += n.buffers;
  return total;
}

SolutionSummary read_solution_summary(std::istream& in) {
  SolutionSummary summary;
  std::string line;
  SolutionSummary::NetSummary* open = nullptr;
  SolutionSummary::NetSummary current;
  int line_no = 0;
  auto fail = [&](const char* msg) {
    std::fprintf(stderr, "solution parse error at line %d: %s\n", line_no,
                 msg);
    std::abort();
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;
    if (cmd == "solution") {
      if (!(ss >> summary.design >> summary.nx >> summary.ny)) {
        fail("solution header needs name nx ny");
      }
    } else if (cmd == "net") {
      if (open != nullptr) fail("nested net");
      current = {};
      std::string status;
      if (!(ss >> current.name >> status)) fail("net needs name + status");
      if (status != "ok" && status != "fail") fail("bad net status");
      current.ok = status == "ok";
      open = &current;
    } else if (cmd == "arc") {
      if (open == nullptr) fail("arc outside net");
      ++open->arcs;
    } else if (cmd == "buffer") {
      if (open == nullptr) fail("buffer outside net");
      ++open->buffers;
    } else if (cmd == "end") {
      if (open == nullptr) fail("end outside net");
      summary.nets.push_back(std::move(current));
      open = nullptr;
    } else {
      fail("unknown directive");
    }
  }
  if (open != nullptr) fail("unterminated net");
  return summary;
}

}  // namespace rabid::core
