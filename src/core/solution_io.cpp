#include "core/solution_io.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace rabid::core {

void write_solution(std::ostream& out, const netlist::Design& design,
                    const tile::TileGraph& g,
                    std::span<const NetState> nets) {
  RABID_ASSERT(nets.size() == design.nets().size());
  out << "# RABID solution format v2\n";
  out << "solution " << design.name() << ' ' << g.nx() << ' ' << g.ny()
      << '\n';
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const NetState& n = nets[i];
    // "unrouted": a deadline-cancelled net with no tree at all — distinct
    // from "fail" (routed but length rule unmet) so a resumed run can
    // reconstruct the exact partial state.
    const char* status =
        n.tree.empty() ? "unrouted" : (n.meets_length_rule ? "ok" : "fail");
    out << "net " << design.net(static_cast<netlist::NetId>(i)).name << ' '
        << status << '\n';
    for (const route::RouteNode& node : n.tree.nodes()) {
      if (node.parent == route::kNoNode) continue;
      const geom::TileCoord a =
          g.coord_of(n.tree.node(node.parent).tile);
      const geom::TileCoord b = g.coord_of(node.tile);
      out << "  arc " << a.x << ' ' << a.y << ' ' << b.x << ' ' << b.y
          << '\n';
    }
    for (std::size_t k = 0; k < n.buffers.size(); ++k) {
      const route::BufferPlacement& b = n.buffers[k];
      const geom::TileCoord c = g.coord_of(n.tree.node(b.node).tile);
      out << "  buffer " << c.x << ' ' << c.y;
      if (b.child == route::kNoNode) {
        out << " drive";
      } else {
        const geom::TileCoord child =
            g.coord_of(n.tree.node(b.child).tile);
        out << " decouple " << child.x << ' ' << child.y;
      }
      if (k < n.buffer_types.size()) out << ' ' << n.buffer_types[k].name;
      out << '\n';
    }
    out << "end\n";
  }
}

std::int64_t SolutionSummary::total_arcs() const {
  std::int64_t total = 0;
  for (const NetSummary& n : nets) total += n.arcs;
  return total;
}

std::int64_t SolutionSummary::total_buffers() const {
  std::int64_t total = 0;
  for (const NetSummary& n : nets) total += n.buffers;
  return total;
}

SolutionSummary read_solution_summary(std::istream& in) {
  SolutionSummary summary;
  std::string line;
  SolutionSummary::NetSummary* open = nullptr;
  SolutionSummary::NetSummary current;
  int line_no = 0;
  auto fail = [&](const char* msg) {
    std::fprintf(stderr, "solution parse error at line %d: %s\n", line_no,
                 msg);
    std::abort();
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;
    if (cmd == "solution") {
      if (!(ss >> summary.design >> summary.nx >> summary.ny)) {
        fail("solution header needs name nx ny");
      }
    } else if (cmd == "net") {
      if (open != nullptr) fail("nested net");
      current = {};
      std::string status;
      if (!(ss >> current.name >> status)) fail("net needs name + status");
      if (status != "ok" && status != "fail" && status != "unrouted") {
        fail("bad net status");
      }
      current.ok = status == "ok";
      open = &current;
    } else if (cmd == "arc") {
      if (open == nullptr) fail("arc outside net");
      ++open->arcs;
    } else if (cmd == "buffer") {
      if (open == nullptr) fail("buffer outside net");
      ++open->buffers;
    } else if (cmd == "end") {
      if (open == nullptr) fail("end outside net");
      summary.nets.push_back(std::move(current));
      open = nullptr;
    } else {
      fail("unknown directive");
    }
  }
  if (open != nullptr) fail("unterminated net");
  return summary;
}

namespace {

/// Thrown by read_solution_impl on malformed input; converted to an
/// abort (legacy read_solution) or a Status (read_solution_checked).
struct SolutionParseError {
  std::string message;
  int line;
};

/// `strict` additionally enforces header-before-nets and a design-name
/// match — requirements of the checkpoint/resume path that the legacy
/// trusted round-trip reader never had.
LoadedSolution read_solution_impl(std::istream& in,
                                  const netlist::Design& design,
                                  const tile::TileGraph& g,
                                  const timing::BufferLibrary* library,
                                  const timing::Technology& tech,
                                  const buffer::BufferLibrary* planning,
                                  bool strict) {
  LoadedSolution sol;
  std::string line;
  int line_no = 0;
  bool have_header = false;
  auto fail = [&](const char* msg) {
    throw SolutionParseError{msg, line_no};
  };

  std::size_t net_index = 0;  // design net the open block must match
  bool open = false;
  NetState current;
  std::vector<std::string> cell_names;

  auto coord_to_tile = [&](std::int32_t x, std::int32_t y) -> tile::TileId {
    if (x < 0 || x >= g.nx() || y < 0 || y >= g.ny()) {
      fail("tile coordinate out of range");
    }
    return g.id_of({x, y});
  };

  auto close_net = [&]() {
    const auto id = static_cast<netlist::NetId>(net_index);
    const netlist::Net& net = design.net(id);
    // A deadline-cancelled net: no tree, no buffers, default delay.
    if (current.tree.empty()) {
      sol.nets.push_back(std::move(current));
      ++net_index;
      return;
    }
    // Sink attachment is not dumped; re-derive it from the pins, which
    // is the same mapping the embedder used.
    for (const netlist::Pin& pin : net.sinks) {
      const route::NodeId node =
          current.tree.node_at(g.tile_at(pin.location));
      if (node == route::kNoNode) fail("sink tile missing from tree");
      current.tree.add_sink(node);
    }
    if ((library != nullptr || planning != nullptr) &&
        std::any_of(cell_names.begin(), cell_names.end(),
                    [](const std::string& c) { return !c.empty(); })) {
      for (const std::string& cell : cell_names) {
        if (cell.empty()) fail("mix of sized and unsized buffers");
        bool found = false;
        if (library != nullptr) {
          for (const timing::BufferType& type : library->types()) {
            if (type.name == cell) {
              current.buffer_types.push_back(type);
              found = true;
              break;
            }
          }
        }
        if (!found && planning != nullptr) {
          // Multi-type stage-3/4 cells; the caller's planning library
          // outlives the solution, so the bound name view stays valid.
          const std::int32_t t = planning->index_of(cell);
          if (t >= 0) {
            current.buffer_types.push_back(
                planning->electrical_of(static_cast<std::size_t>(t)));
            found = true;
          }
        }
        if (!found) fail("cell name not in the buffer library");
      }
    }
    // Delays exactly as Rabid::refresh_delays() commits them.
    const timing::Technology scaled = timing::scaled_for_width(tech, net.width);
    current.delay =
        current.buffer_types.empty()
            ? timing::evaluate_delay(current.tree, current.buffers, g, scaled)
            : timing::evaluate_delay_sized(current.tree, current.buffers,
                                           current.buffer_types, g, scaled);
    sol.nets.push_back(std::move(current));
    ++net_index;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;
    if (cmd == "solution") {
      if (!(ss >> sol.design >> sol.nx >> sol.ny)) {
        fail("solution header needs name nx ny");
      }
      if (sol.nx != g.nx() || sol.ny != g.ny()) {
        fail("solution grid differs from the tile graph");
      }
      if (strict && sol.design != design.name()) {
        fail("solution was written for a different design");
      }
      have_header = true;
    } else if (cmd == "net") {
      if (strict && !have_header) fail("net before the solution header");
      if (open) fail("nested net");
      if (net_index >= design.nets().size()) fail("more nets than design");
      std::string name;
      std::string status;
      if (!(ss >> name >> status)) fail("net needs name + status");
      if (name != design.net(static_cast<netlist::NetId>(net_index)).name) {
        fail("net name out of design order");
      }
      if (status != "ok" && status != "fail" && status != "unrouted") {
        fail("bad net status");
      }
      current = {};
      current.meets_length_rule = status == "ok";
      // "unrouted" nets keep an empty tree; any arc/buffer line under
      // them fails the usual not-in-tree checks below.
      if (status != "unrouted") {
        current.tree = route::RouteTree(g.tile_at(
            design.net(static_cast<netlist::NetId>(net_index))
                .source.location));
      }
      cell_names.clear();
      open = true;
    } else if (cmd == "arc") {
      if (!open) fail("arc outside net");
      std::int32_t ax = 0, ay = 0, bx = 0, by = 0;
      if (!(ss >> ax >> ay >> bx >> by)) fail("arc needs 4 coordinates");
      const tile::TileId parent_tile = coord_to_tile(ax, ay);
      const tile::TileId child_tile = coord_to_tile(bx, by);
      const route::NodeId parent = current.tree.node_at(parent_tile);
      if (parent == route::kNoNode) fail("arc parent tile not in tree");
      if (current.tree.contains(child_tile)) fail("arc revisits a tile");
      if (g.edge_between(parent_tile, child_tile) == tile::kNoEdge) {
        fail("arc between non-adjacent tiles");
      }
      current.tree.add_child(parent, child_tile);
    } else if (cmd == "buffer") {
      if (!open) fail("buffer outside net");
      std::int32_t x = 0, y = 0;
      std::string role;
      if (!(ss >> x >> y >> role)) fail("buffer needs x y role");
      const route::NodeId node = current.tree.node_at(coord_to_tile(x, y));
      if (node == route::kNoNode) fail("buffer tile not in tree");
      route::BufferPlacement placement{node, route::kNoNode};
      if (role == "decouple") {
        std::int32_t cx = 0, cy = 0;
        if (!(ss >> cx >> cy)) fail("decouple needs the child tile");
        const route::NodeId child =
            current.tree.node_at(coord_to_tile(cx, cy));
        if (child == route::kNoNode ||
            current.tree.node(child).parent != node) {
          fail("decoupled tile is not a child of the buffer node");
        }
        placement.child = child;
      } else if (role != "drive") {
        fail("bad buffer role");
      }
      std::string cell;
      ss >> cell;  // optional
      current.buffers.push_back(placement);
      cell_names.push_back(cell);
    } else if (cmd == "end") {
      if (!open) fail("end outside net");
      close_net();
      open = false;
    } else {
      fail("unknown directive");
    }
  }
  if (open) fail("unterminated net");
  if (net_index != design.nets().size()) fail("fewer nets than design");
  return sol;
}

}  // namespace

LoadedSolution read_solution(std::istream& in, const netlist::Design& design,
                             const tile::TileGraph& g,
                             const timing::BufferLibrary* library,
                             const timing::Technology& tech,
                             const buffer::BufferLibrary* planning) {
  try {
    return read_solution_impl(in, design, g, library, tech, planning,
                              /*strict=*/false);
  } catch (const SolutionParseError& e) {
    std::fprintf(stderr, "solution parse error at line %d: %s\n", e.line,
                 e.message.c_str());
    std::abort();
  }
}

Result<LoadedSolution> read_solution_checked(
    std::istream& in, const netlist::Design& design, const tile::TileGraph& g,
    const timing::BufferLibrary* library, const timing::Technology& tech,
    const buffer::BufferLibrary* planning) {
  try {
    return read_solution_impl(in, design, g, library, tech, planning,
                              /*strict=*/true);
  } catch (const SolutionParseError& e) {
    return Status::invalid_input(e.message, "solution", e.line);
  }
}

}  // namespace rabid::core
