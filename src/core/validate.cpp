#include "core/validate.hpp"

#include <string>

#include "netlist/validate.hpp"

namespace rabid::core {

Status validate_inputs(const netlist::Design& design,
                       const tile::TileGraph& graph) {
  if (Status s = netlist::validate_design(design); !s) return s;
  const geom::Rect& chip = graph.chip();
  const geom::Rect& outline = design.outline();
  if (!chip.contains(outline.lo()) || !chip.contains(outline.hi())) {
    return Status::invalid_input(
        "tile graph does not cover the design outline", "tile graph");
  }
  for (tile::TileId t = 0; t < graph.tile_count(); ++t) {
    if (graph.site_usage(t) > graph.site_supply(t)) {
      return Status::invalid_input(
          "tile " + std::to_string(t) + " has b(v)=" +
              std::to_string(graph.site_usage(t)) + " buffers but only B(v)=" +
              std::to_string(graph.site_supply(t)) + " sites",
          "tile graph");
    }
    if (graph.site_usage(t) != 0) {
      return Status::failed_precondition(
          "tile graph usage books are not empty (tile " + std::to_string(t) +
          " has b(v)=" + std::to_string(graph.site_usage(t)) +
          "); a fresh run needs zeroed books");
    }
  }
  for (tile::EdgeId e = 0; e < graph.edge_count(); ++e) {
    if (graph.wire_usage(e) != 0) {
      return Status::failed_precondition(
          "tile graph usage books are not empty (edge " + std::to_string(e) +
          " has w(e)=" + std::to_string(graph.wire_usage(e)) +
          "); a fresh run needs zeroed books");
    }
  }
  return Status::ok();
}

}  // namespace rabid::core
