#pragma once

/// \file run_report.hpp
/// The structured run report: one JSON document unifying everything a
/// flow run can tell about itself — the Table II stage rows, the full
/// observability counter/histogram catalogue, per-tile w(e)/W(e) and
/// b(v)/B(v) utilization histograms, and the audit summary.
///
/// This is the machine-readable complement of report/table.hpp's
/// human-readable Table II: the CLI writes it with --report, the
/// nightly CI job archives it on failure, and bench tooling diffs it
/// across runs.  parse() reads a written report back (via obs/json) so
/// tests can assert exact round-trips and external tools get a schema
/// they can rely on ("schema": "rabid.run_report.v1").
///
/// Counter totals here come straight from the obs registry, which the
/// flow increments incrementally; the audit block comes from the
/// independent ground-up recount.  The two agreeing (e.g. buffer
/// commits minus removals equals the audited buffer total) is itself a
/// checked invariant — see tests/integration/obs_report_test.cpp.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/rabid.hpp"
#include "obs/counters.hpp"

namespace rabid::core {

/// Fixed-width utilization histogram over a resource book: 5%-wide
/// buckets from 0 to 100%, plus one overflow bucket for >= 100%.
/// Entries with zero capacity (e.g. tiles with no buffer sites) are
/// tallied in `skipped`, not bucketed.
struct UtilizationHistogram {
  static constexpr std::size_t kBuckets = 21;

  std::array<std::int64_t, kBuckets> buckets{};
  std::int64_t skipped = 0;  ///< zero-capacity entries (not bucketed)
  std::int64_t total = 0;    ///< bucketed entries (sum of buckets)
  double max_utilization = 0.0;

  /// Bucket index for usage/capacity: floor(u / 0.05), capped at the
  /// >= 100% overflow bucket.
  static std::size_t bucket_of(double utilization);
  void add(double utilization);
};

/// Everything one flow run reports about itself.  Build with
/// build_run_report(), serialize with write_json(), read back with
/// parse().
struct RunReport {
  /// Bumped when a field is renamed or re-shaped (never silently).
  static constexpr std::string_view kSchema = "rabid.run_report.v1";

  std::string design;
  std::int32_t nx = 0;
  std::int32_t ny = 0;
  std::int64_t nets = 0;
  std::int64_t sinks = 0;
  std::int64_t site_supply = 0;
  std::string obs_level;  ///< registry level the run recorded at
  std::int32_t threads = 1;

  /// The Table II rows, in execution order (Rabid::stage_history()).
  std::vector<StageStats> stages;

  /// The full counter catalogue in enum order, names from
  /// obs::counter_name() — zero-valued counters included, so consumers
  /// can tell "did not happen" from "not recorded".
  std::vector<std::pair<std::string, std::int64_t>> counters;

  struct HistogramRow {
    std::string name;
    /// Log2 buckets (obs::kHistogramBuckets wide; trailing zeros kept).
    std::vector<std::int64_t> buckets;
  };
  std::vector<HistogramRow> histograms;

  /// High-water-mark gauges in enum order, names from obs::gauge_name()
  /// — the memory.* byte counters plus the OS peak RSS, recorded even
  /// at obs level off (peak_rss is re-probed at report-build time, so a
  /// run that recorded nothing still reports its memory footprint).
  std::vector<std::pair<std::string, std::int64_t>> gauges;

  UtilizationHistogram wire_utilization;  ///< w(e)/W(e) over all edges
  UtilizationHistogram site_utilization;  ///< b(v)/B(v) over all tiles

  /// "ok" for a full run, "timed_out" when the deadline expired and the
  /// flow returned a partial solution (see RabidOptions::deadline_ms).
  std::string verdict = "ok";
  /// Net-processing steps skipped after the deadline expired.
  std::int64_t nets_cancelled = 0;

  bool audited = false;  ///< the audit block reflects a real audit run
  bool audit_clean = true;
  std::int64_t audit_errors = 0;
  std::int64_t audit_warnings = 0;
  std::int64_t audit_checks = 0;
  std::int64_t audit_nets = 0;

  std::int64_t trace_events = 0;
  std::int64_t trace_dropped = 0;

  void write_json(std::ostream& out) const;
  /// Reads back what write_json() wrote.  On failure returns nullopt
  /// and, when `error` is non-null, stores what went wrong.
  static std::optional<RunReport> parse(std::string_view text,
                                        std::string* error = nullptr);
};

/// Assembles a report from a flow instance's current state plus the
/// global obs registry snapshot.  Pure with respect to the flow; call
/// after the stages (and optionally an audit) have run.
RunReport build_run_report(const Rabid& rabid);

/// The backend-agnostic core of build_run_report: assembles the report
/// from a solution's primitives (design/graph identity, stage rows,
/// verdict, audit summary) plus the global obs registry snapshot.  The
/// shared plumbing under both build_run_report(const Rabid&) and
/// core::Allocator::run_report(), so every backend's report carries the
/// identical schema and catalogue.
RunReport build_run_report_base(const netlist::Design& design,
                                const tile::TileGraph& graph,
                                std::int32_t threads,
                                std::vector<StageStats> stages,
                                std::string verdict,
                                std::int64_t nets_cancelled,
                                const AuditReport* audit);

}  // namespace rabid::core
