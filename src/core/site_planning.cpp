#include "core/site_planning.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rabid::core {

namespace {

/// Block covering a tile center, or kNoBlock for channel space.
netlist::BlockId block_of(const netlist::Design& design,
                          const tile::TileGraph& g, tile::TileId t) {
  const geom::Point c = g.center(t);
  for (std::size_t b = 0; b < design.blocks().size(); ++b) {
    if (design.blocks()[b].shape.contains(c)) {
      return static_cast<netlist::BlockId>(b);
    }
  }
  return netlist::kNoBlock;
}

}  // namespace

SitePlan plan_buffer_sites(const netlist::Design& design,
                           const tile::TileGraph& prototype,
                           double headroom, RabidOptions options) {
  RABID_ASSERT_MSG(headroom >= 1.0, "headroom must be at least 1");

  // Unlimited supplies: far more sites per tile than any net could use.
  tile::TileGraph g = prototype;
  g.reset_usage();
  for (tile::TileId t = 0; t < g.tile_count(); ++t) {
    g.set_site_supply(t, 1 << 20);
  }

  Rabid rabid(design, g, options);
  SitePlan plan;
  const std::vector<StageStats> stats = rabid.run_all();
  plan.planning_stats = stats.back();

  // Bin inserted buffers by covering block.
  std::vector<std::int64_t> per_block(design.blocks().size() + 1, 0);
  for (const NetState& n : rabid.nets()) {
    for (const route::BufferPlacement& b : n.buffers) {
      const netlist::BlockId id =
          block_of(design, g, n.tree.node(b.node).tile);
      const std::size_t slot = id == netlist::kNoBlock
                                   ? design.blocks().size()
                                   : static_cast<std::size_t>(id);
      ++per_block[slot];
      ++plan.total_buffers;
    }
  }

  double channel_area = design.outline().area();
  for (std::size_t b = 0; b < design.blocks().size(); ++b) {
    BlockDemand d;
    d.block = static_cast<netlist::BlockId>(b);
    d.buffers = per_block[b];
    d.area_um2 = design.blocks()[b].shape.area();
    d.recommended_sites = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(d.buffers) * headroom));
    plan.demand.push_back(d);
    plan.total_recommended += d.recommended_sites;
    channel_area -= d.area_um2;
  }
  BlockDemand channels;
  channels.block = netlist::kNoBlock;
  channels.buffers = per_block.back();
  channels.area_um2 = std::max(channel_area, 0.0);
  channels.recommended_sites = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(channels.buffers) * headroom));
  plan.total_recommended += channels.recommended_sites;
  plan.demand.push_back(channels);
  return plan;
}

void apply_site_plan(const SitePlan& plan, const netlist::Design& design,
                     tile::TileGraph& g) {
  // Tiles per demand bucket.
  std::vector<std::vector<tile::TileId>> tiles(plan.demand.size());
  for (tile::TileId t = 0; t < g.tile_count(); ++t) {
    const netlist::BlockId id = block_of(design, g, t);
    const std::size_t slot = id == netlist::kNoBlock
                                 ? plan.demand.size() - 1
                                 : static_cast<std::size_t>(id);
    tiles[slot].push_back(t);
    g.set_site_supply(t, 0);
  }
  // Spread each bucket's recommendation evenly over its tiles (the
  // remainder goes to the first tiles, deterministically).
  for (std::size_t slot = 0; slot < plan.demand.size(); ++slot) {
    const auto& bucket = tiles[slot];
    if (bucket.empty()) continue;
    const std::int64_t total = plan.demand[slot].recommended_sites;
    const auto each = total / static_cast<std::int64_t>(bucket.size());
    auto extra = total % static_cast<std::int64_t>(bucket.size());
    for (const tile::TileId t : bucket) {
      auto supply = each + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      g.set_site_supply(t, static_cast<std::int32_t>(supply));
    }
  }
}

}  // namespace rabid::core
