#include "core/rabid.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "buffer/timing_driven.hpp"
#include "core/congestion_post.hpp"
#include "core/solution_io.hpp"
#include "core/twopath.hpp"
#include "obs/trace.hpp"
#include "route/embed.hpp"
#include "route/maze.hpp"
#include "route/negotiated.hpp"
#include "route/rsmt.hpp"
#include "util/assert.hpp"

namespace rabid::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// True when the buffered tree satisfies the net's length rule: every
/// gate drives at most L tile-units (driver included).
bool meets_rule(const route::RouteTree& tree,
                const route::BufferList& buffers, std::int32_t L) {
  const std::size_t n = tree.node_count();
  std::vector<bool> driving(n, false);
  std::vector<bool> decoupled(n, false);
  for (const route::BufferPlacement& b : buffers) {
    if (b.child == route::kNoNode) {
      driving[static_cast<std::size_t>(b.node)] = true;
    } else {
      decoupled[static_cast<std::size_t>(b.child)] = true;
    }
  }
  std::vector<std::int32_t> load(n, 0);
  for (const route::NodeId v : tree.postorder()) {
    std::int32_t total = 0;
    for (const route::NodeId w : tree.node(v).children) {
      const std::int32_t arc = 1 + load[static_cast<std::size_t>(w)];
      if (decoupled[static_cast<std::size_t>(w)]) {
        if (arc > L) return false;
      } else {
        total += arc;
      }
    }
    if (driving[static_cast<std::size_t>(v)]) {
      if (total > L) return false;
      total = 0;
    }
    load[static_cast<std::size_t>(v)] = total;
  }
  return load[static_cast<std::size_t>(tree.root())] <= L;
}

}  // namespace

Rabid::Rabid(const netlist::Design& design, tile::TileGraph& graph,
             RabidOptions options)
    : design_(design), graph_(graph), options_(options) {
  RABID_ASSERT_MSG(graph.stats().buffers_used == 0 && graph.wire_feasible(),
                   "tile graph usage books must start empty");
  // Observability is process-global; raise-only, so a default-options
  // instance (obs off) never silences a concurrently observed flow.
  obs::Registry::instance().raise_level(options_.obs_level);
  nets_.resize(design.nets().size());
  const std::size_t workers = util::resolve_thread_count(options_.threads);
  if (workers >= 2) pool_ = std::make_unique<util::ThreadPool>(workers);
  if (options_.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(options_.deadline_ms));
  }
}

Status Rabid::restore_solution(const LoadedSolution& solution,
                               int completed_stage) {
  if (completed_stage < 1 || completed_stage > 4) {
    return Status::failed_precondition("completed_stage must be in 1..4");
  }
  if (stage1_done_ || !stage_history_.empty()) {
    return Status::failed_precondition(
        "restore_solution needs a fresh instance (no stage has run)");
  }
  if (solution.nets.size() != design_.nets().size()) {
    return Status::invalid_input("solution net count != design net count",
                                 "solution");
  }
  if (solution.nx != graph_.nx() || solution.ny != graph_.ny()) {
    return Status::invalid_input("solution grid differs from the tile graph",
                                 "solution");
  }
  // Dry-run the buffer-site commits first: a checkpoint written against
  // different supplies must come back as an error, not trip
  // add_buffer's supply assert after half the books are mutated.
  std::vector<std::int32_t> site_need(
      static_cast<std::size_t>(graph_.tile_count()), 0);
  for (const NetState& n : solution.nets) {
    const auto node_count = static_cast<route::NodeId>(n.tree.node_count());
    for (const route::BufferPlacement& b : n.buffers) {
      if (b.node < 0 || b.node >= node_count) {
        return Status::invalid_input("buffer placement at nonexistent node",
                                     "solution");
      }
      const tile::TileId t = n.tree.node(b.node).tile;
      if (t < 0 || t >= graph_.tile_count()) {
        return Status::invalid_input("buffer placement outside the grid",
                                     "solution");
      }
      ++site_need[static_cast<std::size_t>(t)];
    }
  }
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    const auto k = static_cast<std::size_t>(t);
    if (site_need[k] > graph_.site_supply(t) - graph_.site_usage(t)) {
      return Status::invalid_input(
          "solution needs " + std::to_string(site_need[k]) +
              " buffer sites in tile " + std::to_string(t) + " but only " +
              std::to_string(graph_.site_supply(t) - graph_.site_usage(t)) +
              " are free",
          "solution");
    }
  }
  nets_ = solution.nets;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    nets_[i].tree.commit(graph_,
                         design_.net(static_cast<netlist::NetId>(i)).width);
    for (const route::BufferPlacement& b : nets_[i].buffers) {
      graph_.add_buffer(nets_[i].tree.node(b.node).tile);
    }
  }
  stage1_done_ = true;
  stage3_done_ = completed_stage >= 3;
  // The dump's delays were evaluated under a caller-provided tech;
  // re-derive them under ours so the state is exactly what the stages
  // would have left behind.
  refresh_delays();
  obs::count(obs::Counter::kCheckpointLoads);
  return Status::ok();
}

void Rabid::refresh_delays() {
  obs::ScopedTimer obs_timer("refresh_delays", "flow");
  const auto refresh_one = [this](std::size_t i) {
    NetState& n = nets_[i];
    if (n.tree.empty()) return;
    // Wide-wire classes scale the RC model per net (footnote 4).
    const timing::Technology tech = timing::scaled_for_width(
        options_.tech, design_.net(static_cast<netlist::NetId>(i)).width);
    if (n.buffer_types.empty()) {
      n.delay = timing::evaluate_delay(n.tree, n.buffers, graph_, tech);
    } else {
      n.delay = timing::evaluate_delay_sized(n.tree, n.buffers,
                                             n.buffer_types, graph_, tech);
    }
  };
  // Each net touches only its own state; reads of the graph and design
  // are shared and const, so any schedule gives identical delays.
  if (pool_ != nullptr) {
    pool_->parallel_for(0, nets_.size(), refresh_one);
  } else {
    for (std::size_t i = 0; i < nets_.size(); ++i) refresh_one(i);
  }
}

std::vector<std::size_t> Rabid::nets_by_delay(bool ascending) const {
  std::vector<std::size_t> order(nets_.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ascending
                                ? nets_[a].delay.max_ps < nets_[b].delay.max_ps
                                : nets_[a].delay.max_ps > nets_[b].delay.max_ps;
                   });
  return order;
}

StageStats Rabid::snapshot(std::string stage_name, double cpu_s) const {
  StageStats s;
  s.stage = std::move(stage_name);
  s.threads = pool_ == nullptr ? 1 : static_cast<std::int32_t>(pool_->size());
  const tile::CongestionStats cs = graph_.stats();
  s.max_wire_congestion = cs.max_wire_congestion;
  s.avg_wire_congestion = cs.avg_wire_congestion;
  s.overflow = cs.overflow;
  s.max_buffer_density = cs.max_buffer_density;
  s.avg_buffer_density = cs.avg_buffer_density;
  s.buffers = cs.buffers_used;
  s.cpu_s = cpu_s;
  double wl_um = 0.0;
  for (const NetState& n : nets_) {
    if (n.tree.empty()) continue;
    wl_um += n.tree.wirelength_um(graph_);
    if (!n.meets_length_rule) ++s.failed_nets;
    s.max_delay_ps = std::max(s.max_delay_ps, n.delay.max_ps);
  }
  s.wirelength_mm = wl_um / 1000.0;
  double delay_sum = 0.0;
  std::size_t sink_count = 0;
  for (const NetState& n : nets_) {
    delay_sum += n.delay.sum_ps;
    sink_count += n.delay.sink_delays_ps.size();
  }
  s.avg_delay_ps =
      sink_count == 0 ? 0.0 : delay_sum / static_cast<double>(sink_count);
  return s;
}

void Rabid::check_books() const {
  tile::TileGraph shadow(graph_.chip(), graph_.nx(), graph_.ny());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const NetState& n = nets_[i];
    if (n.tree.empty()) continue;
    const std::int32_t width =
        design_.net(static_cast<netlist::NetId>(i)).width;
    for (const route::RouteNode& node : n.tree.nodes()) {
      if (node.parent != route::kNoNode) {
        const tile::EdgeId e = shadow.edge_between(
            node.tile, n.tree.node(node.parent).tile);
        for (std::int32_t k = 0; k < width; ++k) shadow.add_wire(e);
      }
    }
  }
  for (tile::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    RABID_ASSERT_MSG(shadow.wire_usage(e) == graph_.wire_usage(e),
                     "wire books out of sync");
  }
  std::vector<std::int32_t> bufs(static_cast<std::size_t>(graph_.tile_count()),
                                 0);
  for (const NetState& n : nets_) {
    for (const route::BufferPlacement& b : n.buffers) {
      ++bufs[static_cast<std::size_t>(n.tree.node(b.node).tile)];
    }
  }
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    RABID_ASSERT_MSG(bufs[static_cast<std::size_t>(t)] == graph_.site_usage(t),
                     "buffer books out of sync");
  }
}

route::RouteTree Rabid::build_net_tree(std::size_t index) const {
  const netlist::Net& net = design_.net(static_cast<netlist::NetId>(index));
  const auto terminals = static_cast<std::int32_t>(net.sinks.size()) + 1;
  if (terminals <= options_.exact_steiner_max_terminals &&
      terminals <= route::kMaxExactRsmtTerminals) {
    std::vector<geom::Point> pts;
    pts.push_back(net.source.location);
    for (const netlist::Pin& p : net.sinks) pts.push_back(p.location);
    return route::embed_tree(route::rsmt_exact(pts, 0), net, graph_);
  }
  return route::build_initial_route(net, graph_, options_.pd_alpha);
}

StageStats Rabid::run_stage1() {
  obs::ScopedTimer obs_timer("stage1", "stage");
  const auto start = std::chrono::steady_clock::now();
  const auto build_one = [this](std::size_t i) {
    NetState& state = nets_[i];
    // Expired deadline: leave the net unrouted (empty tree, flagged
    // fail) rather than overrun — the honest partial solution.
    if (deadline_hit()) return;
    state.tree = build_net_tree(i);
    state.meets_length_rule =
        meets_rule(state.tree, {},
                   design_.length_limit(static_cast<netlist::NetId>(i)));
  };
  if (pool_ != nullptr) {
    // Construction is a pure function of the net and the graph geometry
    // (it never reads the usage books), so building out of order and
    // committing in net order reproduces the serial run exactly.
    pool_->parallel_for(0, nets_.size(), build_one);
  } else {
    for (std::size_t i = 0; i < nets_.size(); ++i) build_one(i);
  }
  std::int64_t cancelled = 0;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].tree.empty()) {
      ++cancelled;
      continue;
    }
    nets_[i].tree.commit(graph_,
                         design_.net(static_cast<netlist::NetId>(i)).width);
  }
  if (cancelled > 0) {
    nets_cancelled_ += cancelled;
    obs::count(obs::Counter::kDeadlineNetsCancelled,
               static_cast<std::uint64_t>(cancelled));
  }
  refresh_delays();
  stage1_done_ = true;
  StageStats stats = snapshot("1", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("1", /*final_stage=*/false);
  return stats;
}

StageStats Rabid::run_stage2() {
  RABID_ASSERT_MSG(stage1_done_, "stage 2 requires stage 1");
  obs::ScopedTimer obs_timer("stage2", "stage");
  const auto start = std::chrono::steady_clock::now();
  route::MazeRouter router(graph_);
  // Net ordering fixed up front: smallest delay first (Section III-B).
  const std::vector<std::size_t> order = nets_by_delay(/*ascending=*/true);
  const bool astar = options_.router_heuristic == RouterHeuristic::kAStar;

  // Per-pass flat edge costs: the eq. (1) / PathFinder evaluation is
  // hoisted out of the wavefront inner loop into a cache that is
  // refreshed only for edges a rip-up or commit actually changed.
  auto reroute_net = [&](std::size_t i, route::EdgeCostCache& cache) {
    NetState& state = nets_[i];
    // A net stage 1 never routed (deadline) stays unrouted and flagged.
    if (state.tree.empty()) return;
    const netlist::Net& net = design_.net(static_cast<netlist::NetId>(i));
    state.tree.uncommit(graph_, net.width);
    cache.refresh_tree(state.tree);
    state.tree = router.route_net(net, options_.pd_alpha, cache.values(),
                                  astar ? cache.min_cost() : 0.0);
    state.tree.commit(graph_, net.width);
    cache.refresh_tree(state.tree);
    state.meets_length_rule =
        meets_rule(state.tree, {},
                   design_.length_limit(static_cast<netlist::NetId>(i)));
  };

  if (options_.stage2_mode == Stage2Mode::kNegotiated) {
    // PathFinder-style negotiation (the future-work "industrial global
    // router"): overuse is legal but priced, history accumulates.
    route::NegotiationState nego(graph_);
    route::EdgeCostCache cache(graph_,
                               [&](tile::EdgeId e) { return nego.cost(e); });
    for (std::int32_t iter = 0; iter < nego.params().max_iterations;
         ++iter) {
      if (deadline_hit()) break;  // per-pass cancellation point
      obs::ScopedTimer iter_timer("stage2 iteration", "stage");
      obs::count(obs::Counter::kStage2Iterations);
      // History and present-sharing moved between iterations.
      cache.refresh_all();
      for (const std::size_t i : order) reroute_net(i, cache);
      obs::count(obs::Counter::kStage2NetsRipped,
                 static_cast<std::uint64_t>(order.size()));
      if (nego.finish_iteration() == 0) break;
    }
  } else {
    route::EdgeCostCache cache(graph_, [this](tile::EdgeId e) {
      return route::soft_wire_cost(graph_, e);
    });
    // Iteration-start cost snapshot driving the dirty-net filter.
    std::vector<double> snapshot;
    std::vector<std::uint8_t> edge_dirty;
    for (std::int32_t iter = 0; iter < options_.reroute_iterations; ++iter) {
      if (deadline_hit()) break;  // per-pass cancellation point
      obs::ScopedTimer iter_timer("stage2 iteration", "stage");
      obs::count(obs::Counter::kStage2Iterations);
      cache.refresh_all();
      const bool filter = options_.stage2_dirty_filter && iter > 0;
      std::uint64_t dirty_edges = 0;
      if (filter) {
        edge_dirty.assign(static_cast<std::size_t>(graph_.edge_count()), 0);
        for (tile::EdgeId e = 0; e < graph_.edge_count(); ++e) {
          const auto k = static_cast<std::size_t>(e);
          const bool overflowed =
              graph_.wire_usage(e) > graph_.wire_capacity(e);
          const bool moved =
              std::abs(cache[e] - snapshot[k]) >
              options_.stage2_dirty_threshold * snapshot[k];
          if (overflowed || moved) {
            edge_dirty[k] = 1;
            ++dirty_edges;
          }
        }
      }
      snapshot.assign(cache.values().begin(), cache.values().end());
      std::uint64_t ripped = 0;
      std::uint64_t kept = 0;
      for (const std::size_t i : order) {
        if (filter) {
          // A net keeps its route unless the congestion picture under
          // it changed: every overflowed edge is dirty, so any net
          // still causing overflow is always ripped up.
          bool dirty = false;
          const route::RouteTree& tree = nets_[i].tree;
          for (const route::RouteNode& n : tree.nodes()) {
            if (n.parent == route::kNoNode) continue;
            const tile::EdgeId e =
                graph_.edge_between(n.tile, tree.node(n.parent).tile);
            if (edge_dirty[static_cast<std::size_t>(e)] != 0) {
              dirty = true;
              break;
            }
          }
          if (!dirty) {
            ++kept;
            continue;
          }
        }
        ++ripped;
        reroute_net(i, cache);
      }
      if (obs::counting()) {
        obs::count(obs::Counter::kStage2DirtyEdges, dirty_edges);
        obs::count(obs::Counter::kStage2NetsRipped, ripped);
        obs::count(obs::Counter::kStage2NetsKept, kept);
      }
      if (graph_.wire_feasible()) break;
    }
  }
  if (options_.congestion_post_after_stage2) {
    // The Table-V post-pass: spread monotone two-paths at constant
    // wirelength while no buffers pin the routes yet.  (The pass edits
    // usage one track at a time, so wide-wire nets sit it out.)
    std::vector<std::size_t> eligible;
    std::vector<route::RouteTree> trees;
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      if (design_.net(static_cast<netlist::NetId>(i)).width != 1) continue;
      if (nets_[i].tree.empty()) continue;  // deadline-cancelled in stage 1
      eligible.push_back(i);
      trees.push_back(std::move(nets_[i].tree));
    }
    minimize_congestion(graph_, trees);
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      const std::size_t i = eligible[k];
      nets_[i].tree = std::move(trees[k]);
      nets_[i].meets_length_rule =
          meets_rule(nets_[i].tree, {},
                     design_.length_limit(static_cast<netlist::NetId>(i)));
    }
  }
  refresh_delays();
  StageStats stats = snapshot("2", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("2", /*final_stage=*/false);
  return stats;
}

void Rabid::buffer_net(std::size_t index, const std::vector<double>& demand,
                       const buffer::InsertionResult* first_attempt) {
  NetState& state = nets_[index];
  const std::int32_t L =
      design_.length_limit(static_cast<netlist::NetId>(index));

  // Tiles the DP must avoid because an earlier attempt oversubscribed
  // them within this one net (q is computed per net, so a single net can
  // otherwise claim more sites than a tile has left; see Section III-C's
  // multiple-buffers-per-tile remark).
  std::vector<tile::TileId> forbidden;
  for (int attempt = 0;; ++attempt) {
    RABID_ASSERT_MSG(attempt < 64, "buffer commit failed to converge");
    if (attempt > 0) obs::count(obs::Counter::kBufferCommitRetries);
    const auto q = [&](tile::TileId t) {
      if (std::find(forbidden.begin(), forbidden.end(), t) != forbidden.end())
        return tile::kInfCost;
      return graph_.buffer_cost(t, demand[static_cast<std::size_t>(t)]);
    };
    buffer::InsertionResult result =
        attempt == 0 && first_attempt != nullptr
            ? *first_attempt
            : buffer::insert_buffers_planned_relaxed(state.tree, L, q,
                                                     options_.buffer_library);

    // Count proposed buffers per tile; find oversubscribed tiles.
    bool ok = true;
    std::vector<std::pair<tile::TileId, std::int32_t>> per_tile;
    for (const route::BufferPlacement& b : result.buffers) {
      const tile::TileId t = state.tree.node(b.node).tile;
      auto it = std::find_if(per_tile.begin(), per_tile.end(),
                             [&](const auto& p) { return p.first == t; });
      if (it == per_tile.end()) {
        per_tile.emplace_back(t, 1);
      } else {
        ++it->second;
      }
    }
    for (const auto& [t, count] : per_tile) {
      if (count > graph_.site_supply(t) - graph_.site_usage(t)) {
        forbidden.push_back(t);
        ok = false;
      }
    }
    if (!ok) continue;

    for (const auto& [t, count] : per_tile) {
      for (std::int32_t k = 0; k < count; ++k) graph_.add_buffer(t);
    }
    obs::count(obs::Counter::kBuffersCommitted,
               static_cast<std::uint64_t>(result.buffers.size()));
    state.buffers = std::move(result.buffers);
    // Unit libraries leave the tags empty (the historical state, and
    // what the bit-identical goldens pin); the multi-type engine's
    // chosen types become electrical cells so delays and dumps see them.
    state.buffer_types.clear();
    for (const std::int32_t t : result.types) {
      state.buffer_types.push_back(
          options_.buffer_library.electrical_of(static_cast<std::size_t>(t)));
    }
    state.meets_length_rule = result.feasible && result.effective_limit <= L;
    return;
  }
}

StageStats Rabid::rebuffer_timing_driven(std::size_t worst_nets,
                                         const timing::BufferLibrary& lib,
                                         bool use_inverters) {
  RABID_ASSERT_MSG(stage3_done_, "timing-driven rebuffering needs buffers");
  obs::ScopedTimer obs_timer("rebuffer_vG", "stage");
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::size_t> order = nets_by_delay(/*ascending=*/false);
  if (order.size() > worst_nets) order.resize(worst_nets);

  for (const std::size_t i : order) {
    // Per-net cancellation point: a skipped net keeps its complete
    // stage-3/4 buffering.
    if (deadline_hit()) break;
    NetState& state = nets_[i];
    if (state.tree.empty()) continue;
    // Return this net's sites to the pool; its old solution stays
    // reachable, so the optimum can only improve.
    obs::count(obs::Counter::kBuffersRemoved,
               static_cast<std::uint64_t>(state.buffers.size()));
    for (const route::BufferPlacement& b : state.buffers) {
      graph_.remove_buffer(state.tree.node(b.node).tile);
    }
    state.buffers.clear();
    state.buffer_types.clear();

    std::vector<tile::TileId> forbidden;
    for (int attempt = 0;; ++attempt) {
      RABID_ASSERT_MSG(attempt < 64, "vG commit failed to converge");
      if (attempt > 0) obs::count(obs::Counter::kBufferCommitRetries);
      const buffer::TileAllowFn allow = [&](tile::TileId t) {
        if (graph_.site_usage(t) >= graph_.site_supply(t)) return false;
        return std::find(forbidden.begin(), forbidden.end(), t) ==
               forbidden.end();
      };
      const timing::Technology tech = timing::scaled_for_width(
          options_.tech, design_.net(static_cast<netlist::NetId>(i)).width);
      buffer::TimingDrivenResult result =
          use_inverters
              ? buffer::van_ginneken_with_inverters(state.tree, graph_, lib,
                                                    allow, tech)
              : buffer::van_ginneken(state.tree, graph_, lib, allow, tech);

      bool ok = true;
      std::vector<std::pair<tile::TileId, std::int32_t>> per_tile;
      for (const route::BufferPlacement& b : result.buffers) {
        const tile::TileId t = state.tree.node(b.node).tile;
        auto it = std::find_if(per_tile.begin(), per_tile.end(),
                               [&](const auto& p) { return p.first == t; });
        if (it == per_tile.end()) {
          per_tile.emplace_back(t, 1);
        } else {
          ++it->second;
        }
      }
      for (const auto& [t, count] : per_tile) {
        if (count > graph_.site_supply(t) - graph_.site_usage(t)) {
          forbidden.push_back(t);
          ok = false;
        }
      }
      if (!ok) continue;

      for (const auto& [t, count] : per_tile) {
        for (std::int32_t k = 0; k < count; ++k) graph_.add_buffer(t);
      }
      obs::count(obs::Counter::kBuffersCommitted,
                 static_cast<std::uint64_t>(result.buffers.size()));
      state.buffers = std::move(result.buffers);
      state.buffer_types = std::move(result.types);
      break;
    }
    // Timing won; report the length rule honestly.
    state.meets_length_rule =
        meets_rule(state.tree, state.buffers,
                   design_.length_limit(static_cast<netlist::NetId>(i)));
  }
  refresh_delays();
  StageStats stats = snapshot("vG", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("vG", /*final_stage=*/true);
  return stats;
}

StageStats Rabid::run_stage3() {
  RABID_ASSERT_MSG(stage1_done_, "stage 3 requires a routing");
  obs::ScopedTimer obs_timer("stage3", "stage");
  const auto start = std::chrono::steady_clock::now();

  // p(v): expected demand from unprocessed nets — 1/L_i per crossed tile.
  std::vector<double> demand(static_cast<std::size_t>(graph_.tile_count()),
                             0.0);
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double p =
        1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
    for (const route::RouteNode& n : nets_[i].tree.nodes()) {
      demand[static_cast<std::size_t>(n.tile)] += p;
    }
  }

  // Highest-delay net first (Section III-C); alternatives for ablation.
  std::vector<std::size_t> order;
  switch (options_.stage3_order) {
    case Stage3Order::kDescendingDelay:
      order = nets_by_delay(/*ascending=*/false);
      break;
    case Stage3Order::kAscendingDelay:
      order = nets_by_delay(/*ascending=*/true);
      break;
    case Stage3Order::kAsGiven:
      order.resize(nets_.size());
      std::iota(order.begin(), order.end(), 0U);
      break;
  }
  if (pool_ != nullptr) {
    assign_buffers_parallel(order, demand);
  } else {
    for (std::size_t k = 0; k < order.size(); ++k) {
      // Per-net cancellation point: remaining nets keep their legal
      // stage-2 routes, honestly flagged (no buffers, rule unmet).
      if (deadline_hit()) {
        const auto cancelled = static_cast<std::int64_t>(order.size() - k);
        nets_cancelled_ += cancelled;
        obs::count(obs::Counter::kDeadlineNetsCancelled,
                   static_cast<std::uint64_t>(cancelled));
        break;
      }
      const std::size_t i = order[k];
      if (nets_[i].tree.empty()) continue;
      // The current net no longer counts as "future demand".
      const double p =
          1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        demand[static_cast<std::size_t>(n.tile)] -= p;
      }
      buffer_net(i, demand);
    }
  }
  refresh_delays();
  stage3_done_ = true;
  StageStats stats = snapshot("3", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("3", /*final_stage=*/false);
  return stats;
}

void Rabid::assign_buffers_parallel(const std::vector<std::size_t>& order,
                                    std::vector<double>& demand) {
  // Speculative batches: per-net DPs run concurrently against the books
  // as of the batch start; commits then replay serially in `order`.  A
  // net whose tree crossed a tile that gained a buffer earlier in the
  // same batch has stale q-costs and falls back to the serial DP, so
  // the solution is bit-identical to the single-threaded loop at any
  // thread count.
  const std::size_t batch = pool_->size();
  std::vector<std::uint8_t> dirty(
      static_cast<std::size_t>(graph_.tile_count()), 0);
  std::vector<double> scratch;
  for (std::size_t b0 = 0; b0 < order.size(); b0 += batch) {
    // Per-batch cancellation point (a batch is at most pool-size nets,
    // so the granularity matches the serial per-net check).
    if (deadline_hit()) {
      const auto cancelled = static_cast<std::int64_t>(order.size() - b0);
      nets_cancelled_ += cancelled;
      obs::count(obs::Counter::kDeadlineNetsCancelled,
                 static_cast<std::uint64_t>(cancelled));
      break;
    }
    obs::ScopedTimer batch_timer("stage3 batch", "batch");
    const std::size_t count = std::min(batch, order.size() - b0);

    // Demand progression: replicate the serial per-node subtraction
    // order on a copy of the p(v) book, recording each net's
    // post-subtraction values for exactly the tiles its DP prices.
    scratch = demand;
    std::vector<std::unordered_map<tile::TileId, double>> net_demand(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = order[b0 + k];
      const double p =
          1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        scratch[static_cast<std::size_t>(n.tile)] -= p;
      }
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        net_demand[k][n.tile] = scratch[static_cast<std::size_t>(n.tile)];
      }
    }

    // Parallel phase: nothing mutates the graph while the DPs read it.
    std::vector<buffer::InsertionResult> speculated(count);
    pool_->parallel_for(0, count, [&](std::size_t k) {
      const std::size_t i = order[b0 + k];
      if (nets_[i].tree.empty()) return;  // deadline-cancelled in stage 1
      const std::unordered_map<tile::TileId, double>& dm = net_demand[k];
      const auto q = [&](tile::TileId t) {
        const auto it = dm.find(t);
        RABID_ASSERT_MSG(it != dm.end(),
                         "speculative DP priced an off-tree tile");
        return graph_.buffer_cost(t, it->second);
      };
      speculated[k] = buffer::insert_buffers_planned_relaxed(
          nets_[i].tree, design_.length_limit(static_cast<netlist::NetId>(i)),
          q, options_.buffer_library);
    });

    // Serial phase: commits in net order, exactly as the serial loop
    // would.  A speculated result is valid while no earlier commit in
    // this batch placed a buffer in any tile its DP priced.
    std::fill(dirty.begin(), dirty.end(), 0);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = order[b0 + k];
      if (nets_[i].tree.empty()) continue;
      const double p =
          1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
      bool fresh = true;
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        demand[static_cast<std::size_t>(n.tile)] -= p;
        if (dirty[static_cast<std::size_t>(n.tile)] != 0) fresh = false;
      }
      obs::count(fresh ? obs::Counter::kStage3SpecHits
                       : obs::Counter::kStage3SpecMisses);
      buffer_net(i, demand, fresh ? &speculated[k] : nullptr);
      for (const route::BufferPlacement& b : nets_[i].buffers) {
        dirty[static_cast<std::size_t>(nets_[i].tree.node(b.node).tile)] = 1;
      }
    }
  }
}

StageStats Rabid::run_stage4() {
  RABID_ASSERT_MSG(stage3_done_, "stage 4 requires stage 3");
  obs::ScopedTimer obs_timer("stage4", "stage");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<double> no_demand(
      static_cast<std::size_t>(graph_.tile_count()), 0.0);
  const bool astar = options_.router_heuristic == RouterHeuristic::kAStar;

  // Flat cost tables so the (tile x L) search pays one load per
  // relaxation.  Wire usage only moves at uncommit/commit, buffer-site
  // usage only at remove_buffer/buffer_net — each point below refreshes
  // exactly the entries it touched.
  route::EdgeCostCache wire_cache(graph_, [this](tile::EdgeId e) {
    return route::soft_wire_cost(graph_, e);
  });
  std::vector<double> site_cost(static_cast<std::size_t>(graph_.tile_count()));
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    site_cost[static_cast<std::size_t>(t)] = graph_.buffer_cost(t, 0.0);
  }
  // One search object for the whole stage: its stamped (tile x L) scratch
  // warms up once and every later two-path touches only visited states.
  TwoPathSearch search(graph_);

  for (std::int32_t iter = 0; iter < options_.postprocess_iterations;
       ++iter) {
    if (deadline_hit()) break;
    wire_cache.refresh_all();
    for (const std::size_t i : nets_by_delay(/*ascending=*/true)) {
      // Per-net cancellation point: a skipped net keeps its complete
      // (stage-3) solution, so the state stays fully legal.
      if (deadline_hit()) break;
      NetState& state = nets_[i];
      if (state.tree.empty()) continue;
      const std::int32_t L =
          design_.length_limit(static_cast<netlist::NetId>(i));

      // Rip out the net's buffers and wires from the books.
      obs::count(obs::Counter::kBuffersRemoved,
                 static_cast<std::uint64_t>(state.buffers.size()));
      for (const route::BufferPlacement& b : state.buffers) {
        const tile::TileId t = state.tree.node(b.node).tile;
        graph_.remove_buffer(t);
        site_cost[static_cast<std::size_t>(t)] = graph_.buffer_cost(t, 0.0);
      }
      state.buffers.clear();
      const std::int32_t width =
          design_.net(static_cast<netlist::NetId>(i)).width;
      state.tree.uncommit(graph_, width);
      wire_cache.refresh_tree(state.tree);

      // Reroute one two-path at a time with joint wire+buffer costs.
      // The decomposition is recomputed from the live tree after every
      // replacement: a reroute may share arcs with a not-yet-processed
      // two-path, so ripping from a stale snapshot could sever it.
      TileTreeEditor editor(state.tree, graph_);
      route::RouteTree current = editor.rebuild();
      std::vector<std::pair<tile::TileId, tile::TileId>> processed;
      const std::size_t max_rips = 3 * current.two_paths().size() + 4;
      for (std::size_t rip = 0; rip < max_rips; ++rip) {
        const auto paths = current.two_paths();
        const route::RouteTree::TwoPath* next = nullptr;
        std::pair<tile::TileId, tile::TileId> key{tile::kNoTile,
                                                  tile::kNoTile};
        for (const auto& tp : paths) {
          key = {current.node(tp.head).tile, current.node(tp.tail).tile};
          if (std::find(processed.begin(), processed.end(), key) ==
              processed.end()) {
            next = &tp;
            break;
          }
        }
        if (next == nullptr) break;
        processed.push_back(key);
        std::vector<tile::TileId> interior;
        interior.reserve(next->interior.size());
        for (const route::NodeId n : next->interior) {
          interior.push_back(current.node(n).tile);
        }
        editor.remove_path(key.first, interior, key.second);
        const TwoPathRoute reroute = search.route(
            key.second, key.first, L, wire_cache.values(), site_cost,
            options_.stage4_wire_weight, options_.stage4_buffer_weight,
            astar ? wire_cache.min_cost() : 0.0);
        editor.add_path(reroute.tiles);
        current = editor.rebuild();
      }
      state.tree = std::move(current);
      state.tree.commit(graph_, width);
      wire_cache.refresh_tree(state.tree);

      // Re-insert buffers net-wide, exactly as in Stage 3.
      buffer_net(i, no_demand);
      for (const route::BufferPlacement& b : state.buffers) {
        const tile::TileId t = state.tree.node(b.node).tile;
        site_cost[static_cast<std::size_t>(t)] = graph_.buffer_cost(t, 0.0);
      }
    }
  }
  refresh_delays();
  StageStats stats = snapshot("4", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("4", /*final_stage=*/true);
  return stats;
}

std::vector<StageStats> Rabid::run_all() {
  std::vector<StageStats> stats;
  stats.push_back(run_stage1());
  // Stage-boundary cancellation points: once the deadline expires the
  // remaining stages are skipped outright and the current (legal,
  // audited-tolerant) partial solution is the result.
  if (!deadline_hit()) stats.push_back(run_stage2());
  if (!deadline_hit()) stats.push_back(run_stage3());
  if (!deadline_hit()) {
    stats.push_back(run_stage4());
  } else {
    // Stage 4 never started, so its final-stage audit never ran — but
    // the partial solution *is* final now, and a kFinal-level run still
    // has to see it audited.
    maybe_audit("deadline", /*final_stage=*/true);
  }
  return stats;
}

}  // namespace rabid::core
