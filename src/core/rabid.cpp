#include "core/rabid.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <unordered_map>

#include "buffer/timing_driven.hpp"
#include "core/allocator.hpp"
#include "core/checkpoint.hpp"
#include "core/congestion_post.hpp"
#include "core/solution_io.hpp"
#include "core/twopath.hpp"
#include "obs/memory.hpp"
#include "obs/trace.hpp"
#include "route/embed.hpp"
#include "route/maze.hpp"
#include "route/negotiated.hpp"
#include "route/rsmt.hpp"
#include "util/assert.hpp"

namespace rabid::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// True when the buffered tree satisfies the net's length rule: every
/// gate drives at most L tile-units (driver included).
bool meets_rule(const route::RouteTree& tree,
                const route::BufferList& buffers, std::int32_t L) {
  const std::size_t n = tree.node_count();
  std::vector<bool> driving(n, false);
  std::vector<bool> decoupled(n, false);
  for (const route::BufferPlacement& b : buffers) {
    if (b.child == route::kNoNode) {
      driving[static_cast<std::size_t>(b.node)] = true;
    } else {
      decoupled[static_cast<std::size_t>(b.child)] = true;
    }
  }
  std::vector<std::int32_t> load(n, 0);
  for (const route::NodeId v : tree.postorder()) {
    std::int32_t total = 0;
    for (const route::NodeId w : tree.node(v).children) {
      const std::int32_t arc = 1 + load[static_cast<std::size_t>(w)];
      if (decoupled[static_cast<std::size_t>(w)]) {
        if (arc > L) return false;
      } else {
        total += arc;
      }
    }
    if (driving[static_cast<std::size_t>(v)]) {
      if (total > L) return false;
      total = 0;
    }
    load[static_cast<std::size_t>(v)] = total;
  }
  return load[static_cast<std::size_t>(tree.root())] <= L;
}

}  // namespace

bool meets_length_rule(const route::RouteTree& tree,
                       const route::BufferList& buffers, std::int32_t L) {
  return meets_rule(tree, buffers, L);
}

Rabid::Rabid(const netlist::Design& design, tile::TileGraph& graph,
             RabidOptions options)
    : design_(design), graph_(graph), options_(options) {
  RABID_ASSERT_MSG(graph.stats().buffers_used == 0 && graph.wire_feasible(),
                   "tile graph usage books must start empty");
  // Observability is process-global; raise-only, so a default-options
  // instance (obs off) never silences a concurrently observed flow.
  obs::Registry::instance().raise_level(options_.obs_level);
  nets_.resize(design.nets().size());
  const std::size_t workers = util::resolve_thread_count(options_.threads);
  if (workers >= 2) pool_ = std::make_unique<util::ThreadPool>(workers);
  if (options_.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(options_.deadline_ms));
  }
}

Status Rabid::restore_solution(const LoadedSolution& solution,
                               int completed_stage) {
  if (completed_stage < 1 || completed_stage > 4) {
    return Status::failed_precondition("completed_stage must be in 1..4");
  }
  if (stage1_done_ || !stage_history_.empty()) {
    return Status::failed_precondition(
        "restore_solution needs a fresh instance (no stage has run)");
  }
  if (solution.nets.size() != design_.nets().size()) {
    return Status::invalid_input("solution net count != design net count",
                                 "solution");
  }
  if (solution.nx != graph_.nx() || solution.ny != graph_.ny()) {
    return Status::invalid_input("solution grid differs from the tile graph",
                                 "solution");
  }
  // Dry-run the buffer-site commits first: a checkpoint written against
  // different supplies must come back as an error, not trip
  // add_buffer's supply assert after half the books are mutated.
  std::vector<std::int32_t> site_need(
      static_cast<std::size_t>(graph_.tile_count()), 0);
  for (const NetState& n : solution.nets) {
    const auto node_count = static_cast<route::NodeId>(n.tree.node_count());
    for (const route::BufferPlacement& b : n.buffers) {
      if (b.node < 0 || b.node >= node_count) {
        return Status::invalid_input("buffer placement at nonexistent node",
                                     "solution");
      }
      const tile::TileId t = n.tree.node(b.node).tile;
      if (t < 0 || t >= graph_.tile_count()) {
        return Status::invalid_input("buffer placement outside the grid",
                                     "solution");
      }
      ++site_need[static_cast<std::size_t>(t)];
    }
  }
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    const auto k = static_cast<std::size_t>(t);
    if (site_need[k] > graph_.site_supply(t) - graph_.site_usage(t)) {
      return Status::invalid_input(
          "solution needs " + std::to_string(site_need[k]) +
              " buffer sites in tile " + std::to_string(t) + " but only " +
              std::to_string(graph_.site_supply(t) - graph_.site_usage(t)) +
              " are free",
          "solution");
    }
  }
  nets_ = solution.nets;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    nets_[i].tree.commit(graph_,
                         design_.net(static_cast<netlist::NetId>(i)).width);
    for (const route::BufferPlacement& b : nets_[i].buffers) {
      graph_.add_buffer(nets_[i].tree.node(b.node).tile);
    }
  }
  stage1_done_ = true;
  stage3_done_ = completed_stage >= 3;
  // The dump's delays were evaluated under a caller-provided tech;
  // re-derive them under ours so the state is exactly what the stages
  // would have left behind.
  refresh_delays();
  obs::count(obs::Counter::kCheckpointLoads);
  return Status::ok();
}

Status Rabid::restore_stage2_progress(Stage2Progress progress) {
  if (!stage1_done_) {
    return Status::failed_precondition(
        "stage-2 progress needs a restored stage-1 solution first");
  }
  if (options_.stage2_mode != Stage2Mode::kRipUpReroute) {
    return Status::failed_precondition(
        "stage-2 progress applies to the rip-up/reroute engine only");
  }
  if (options_.stage2_shards > 0 && progress.next_pos > 0) {
    return Status::failed_precondition(
        "mid-iteration stage-2 checkpoints resume only with the serial "
        "engine (stage2_shards = 0)");
  }
  const char* const origin = "stage2_progress";
  if (progress.iteration < 0 ||
      progress.iteration > options_.reroute_iterations) {
    return Status::invalid_input("progress iteration out of range", origin);
  }
  if (progress.order.size() != nets_.size()) {
    return Status::invalid_input(
        "progress order has " + std::to_string(progress.order.size()) +
            " entries for a " + std::to_string(nets_.size()) + "-net design",
        origin);
  }
  std::vector<std::uint8_t> seen(nets_.size(), 0);
  for (const std::uint32_t i : progress.order) {
    if (i >= nets_.size() || seen[i] != 0) {
      return Status::invalid_input(
          "progress order is not a permutation of the net ids", origin);
    }
    seen[i] = 1;
  }
  if (progress.next_pos < 0 ||
      progress.next_pos > static_cast<std::int64_t>(progress.order.size())) {
    return Status::invalid_input("progress next_pos out of range", origin);
  }
  const auto edges = static_cast<std::size_t>(graph_.edge_count());
  if (progress.iteration > 0 || progress.next_pos > 0) {
    if (progress.snapshot.size() != edges) {
      return Status::invalid_input(
          "progress snapshot does not match the edge count", origin);
    }
    for (const double v : progress.snapshot) {
      if (!std::isfinite(v) || v < 0.0) {
        return Status::invalid_input(
            "progress snapshot holds a non-finite or negative cost", origin);
      }
    }
  }
  const bool needs_mask = progress.next_pos > 0 && progress.iteration > 0 &&
                          options_.stage2_dirty_filter;
  if (needs_mask && progress.edge_dirty.size() != edges) {
    return Status::invalid_input(
        "progress dirty mask does not match the edge count", origin);
  }
  if (!std::isfinite(progress.min_cost) || progress.min_cost < 0.0) {
    return Status::invalid_input("progress min_cost is not a finite cost",
                                 origin);
  }
  stage2_progress_ = std::make_unique<Stage2Progress>(std::move(progress));
  return Status::ok();
}

void Rabid::record_memory_gauges() const {
  if (!obs::counting()) return;
  obs::record_peak_rss();
  obs::gauge_max(obs::GaugeId::kTileGraphBytes, graph_.memory_bytes());
  std::uint64_t trees = 0;
  for (const NetState& n : nets_) trees += n.tree.memory_bytes();
  obs::gauge_max(obs::GaugeId::kRouteTreeBytes, trees);
}

void Rabid::refresh_delays() {
  obs::ScopedTimer obs_timer("refresh_delays", "flow");
  const auto refresh_one = [this](std::size_t i) {
    NetState& n = nets_[i];
    if (n.tree.empty()) return;
    // Wide-wire classes scale the RC model per net (footnote 4).
    const timing::Technology tech = timing::scaled_for_width(
        options_.tech, design_.net(static_cast<netlist::NetId>(i)).width);
    if (n.buffer_types.empty()) {
      n.delay = timing::evaluate_delay(n.tree, n.buffers, graph_, tech);
    } else {
      n.delay = timing::evaluate_delay_sized(n.tree, n.buffers,
                                             n.buffer_types, graph_, tech);
    }
  };
  // Each net touches only its own state; reads of the graph and design
  // are shared and const, so any schedule gives identical delays.
  if (pool_ != nullptr) {
    pool_->parallel_for(0, nets_.size(), refresh_one);
  } else {
    for (std::size_t i = 0; i < nets_.size(); ++i) refresh_one(i);
  }
}

std::vector<std::size_t> Rabid::nets_by_delay(bool ascending) const {
  std::vector<std::size_t> order(nets_.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ascending
                                ? nets_[a].delay.max_ps < nets_[b].delay.max_ps
                                : nets_[a].delay.max_ps > nets_[b].delay.max_ps;
                   });
  return order;
}

StageStats Rabid::snapshot(std::string stage_name, double cpu_s) const {
  return solution_snapshot(
      graph_, nets_, std::move(stage_name), cpu_s,
      pool_ == nullptr ? 1 : static_cast<std::int32_t>(pool_->size()));
}

StageStats solution_snapshot(const tile::TileGraph& graph,
                             std::span<const NetState> nets,
                             std::string stage, double cpu_s,
                             std::int32_t threads) {
  StageStats s;
  s.stage = std::move(stage);
  s.threads = threads;
  const tile::CongestionStats cs = graph.stats();
  s.max_wire_congestion = cs.max_wire_congestion;
  s.avg_wire_congestion = cs.avg_wire_congestion;
  s.overflow = cs.overflow;
  s.max_buffer_density = cs.max_buffer_density;
  s.avg_buffer_density = cs.avg_buffer_density;
  s.buffers = cs.buffers_used;
  s.cpu_s = cpu_s;
  double wl_um = 0.0;
  for (const NetState& n : nets) {
    if (n.tree.empty()) continue;
    wl_um += n.tree.wirelength_um(graph);
    if (!n.meets_length_rule) ++s.failed_nets;
    s.max_delay_ps = std::max(s.max_delay_ps, n.delay.max_ps);
  }
  s.wirelength_mm = wl_um / 1000.0;
  double delay_sum = 0.0;
  std::size_t sink_count = 0;
  for (const NetState& n : nets) {
    delay_sum += n.delay.sum_ps;
    sink_count += n.delay.sink_delays_ps.size();
  }
  s.avg_delay_ps =
      sink_count == 0 ? 0.0 : delay_sum / static_cast<double>(sink_count);
  return s;
}

void Rabid::check_books() const {
  tile::TileGraph shadow(graph_.chip(), graph_.nx(), graph_.ny());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const NetState& n = nets_[i];
    if (n.tree.empty()) continue;
    const std::int32_t width =
        design_.net(static_cast<netlist::NetId>(i)).width;
    for (const route::RouteNode& node : n.tree.nodes()) {
      if (node.parent != route::kNoNode) {
        const tile::EdgeId e = shadow.edge_between(
            node.tile, n.tree.node(node.parent).tile);
        for (std::int32_t k = 0; k < width; ++k) shadow.add_wire(e);
      }
    }
  }
  for (tile::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    RABID_ASSERT_MSG(shadow.wire_usage(e) == graph_.wire_usage(e),
                     "wire books out of sync");
  }
  std::vector<std::int32_t> bufs(static_cast<std::size_t>(graph_.tile_count()),
                                 0);
  for (const NetState& n : nets_) {
    for (const route::BufferPlacement& b : n.buffers) {
      ++bufs[static_cast<std::size_t>(n.tree.node(b.node).tile)];
    }
  }
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    RABID_ASSERT_MSG(bufs[static_cast<std::size_t>(t)] == graph_.site_usage(t),
                     "buffer books out of sync");
  }
}

route::RouteTree Rabid::build_net_tree(std::size_t index) const {
  const netlist::Net& net = design_.net(static_cast<netlist::NetId>(index));
  const auto terminals = static_cast<std::int32_t>(net.sinks.size()) + 1;
  if (terminals <= options_.exact_steiner_max_terminals &&
      terminals <= route::kMaxExactRsmtTerminals) {
    std::vector<geom::Point> pts;
    pts.push_back(net.source.location);
    for (const netlist::Pin& p : net.sinks) pts.push_back(p.location);
    return route::embed_tree(route::rsmt_exact(pts, 0), net, graph_);
  }
  return route::build_initial_route(net, graph_, options_.pd_alpha);
}

StageStats Rabid::run_stage1() {
  obs::ScopedTimer obs_timer("stage1", "stage");
  const auto start = std::chrono::steady_clock::now();
  const auto build_one = [this](std::size_t i) {
    NetState& state = nets_[i];
    // Expired deadline: leave the net unrouted (empty tree, flagged
    // fail) rather than overrun — the honest partial solution.
    if (deadline_hit()) return;
    state.tree = build_net_tree(i);
    state.meets_length_rule =
        meets_rule(state.tree, {},
                   design_.length_limit(static_cast<netlist::NetId>(i)));
  };
  if (pool_ != nullptr) {
    // Construction is a pure function of the net and the graph geometry
    // (it never reads the usage books), so building out of order and
    // committing in net order reproduces the serial run exactly.
    pool_->parallel_for(0, nets_.size(), build_one);
  } else {
    for (std::size_t i = 0; i < nets_.size(); ++i) build_one(i);
  }
  std::int64_t cancelled = 0;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].tree.empty()) {
      ++cancelled;
      continue;
    }
    nets_[i].tree.commit(graph_,
                         design_.net(static_cast<netlist::NetId>(i)).width);
  }
  if (cancelled > 0) {
    nets_cancelled_ += cancelled;
    obs::count(obs::Counter::kDeadlineNetsCancelled,
               static_cast<std::uint64_t>(cancelled));
  }
  refresh_delays();
  stage1_done_ = true;
  record_memory_gauges();
  StageStats stats = snapshot("1", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("1", /*final_stage=*/false);
  return stats;
}

StageStats Rabid::run_stage2() {
  RABID_ASSERT_MSG(stage1_done_, "stage 2 requires stage 1");
  obs::ScopedTimer obs_timer("stage2", "stage");
  const auto start = std::chrono::steady_clock::now();
  route::MazeRouter router(graph_);
  // Net ordering fixed up front: smallest delay first (Section III-B).
  // A resumed run replays the checkpointed order instead — the live
  // delays were just recomputed from mid-stage trees, so rederiving the
  // order here would diverge from the interrupted run.
  std::vector<std::size_t> order;
  if (stage2_progress_ != nullptr) {
    order.reserve(stage2_progress_->order.size());
    for (const std::uint32_t i : stage2_progress_->order) {
      order.push_back(static_cast<std::size_t>(i));
    }
  } else {
    order = nets_by_delay(/*ascending=*/true);
  }
  const bool astar = options_.router_heuristic == RouterHeuristic::kAStar;

  // Per-pass flat edge costs: the eq. (1) / PathFinder evaluation is
  // hoisted out of the wavefront inner loop into a cache that is
  // refreshed only for edges a rip-up or commit actually changed.
  // `shard_floor`, when non-null, owns the A* step floor instead of the
  // cache's global bound: a parallel shard folds its refreshes into a
  // private floor (refresh_tree_sharded), so the shared minimum is
  // never written concurrently.
  auto reroute_net = [&](std::size_t i, route::MazeRouter& mr,
                         route::EdgeCostCache& cache, double* shard_floor) {
    NetState& state = nets_[i];
    // A net stage 1 never routed (deadline) stays unrouted and flagged.
    if (state.tree.empty()) return;
    const netlist::Net& net = design_.net(static_cast<netlist::NetId>(i));
    state.tree.uncommit(graph_, net.width);
    if (shard_floor != nullptr) {
      cache.refresh_tree_sharded(state.tree, *shard_floor);
    } else {
      cache.refresh_tree(state.tree);
    }
    const double floor = !astar                  ? 0.0
                         : shard_floor != nullptr ? *shard_floor
                                                  : cache.min_cost();
    state.tree = mr.route_net(net, options_.pd_alpha, cache.values(), floor);
    state.tree.commit(graph_, net.width);
    if (shard_floor != nullptr) {
      cache.refresh_tree_sharded(state.tree, *shard_floor);
    } else {
      cache.refresh_tree(state.tree);
    }
    state.meets_length_rule =
        meets_rule(state.tree, {},
                   design_.length_limit(static_cast<netlist::NetId>(i)));
  };

  if (options_.stage2_mode == Stage2Mode::kNegotiated) {
    // PathFinder-style negotiation (the future-work "industrial global
    // router"): overuse is legal but priced, history accumulates.
    route::NegotiationState nego(graph_);
    route::EdgeCostCache cache(graph_,
                               [&](tile::EdgeId e) { return nego.cost(e); });
    for (std::int32_t iter = 0; iter < nego.params().max_iterations;
         ++iter) {
      if (deadline_hit()) break;  // per-pass cancellation point
      obs::ScopedTimer iter_timer("stage2 iteration", "stage");
      obs::count(obs::Counter::kStage2Iterations);
      // History and present-sharing moved between iterations.
      cache.refresh_all();
      for (const std::size_t i : order) {
        reroute_net(i, router, cache, nullptr);
      }
      obs::count(obs::Counter::kStage2NetsRipped,
                 static_cast<std::uint64_t>(order.size()));
      if (nego.finish_iteration() == 0) break;
    }
  } else {
    route::EdgeCostCache cache(graph_, [this](tile::EdgeId e) {
      return route::soft_wire_cost(graph_, e);
    });
    // Iteration-start cost snapshot driving the dirty-net filter.
    std::vector<double> snapshot;
    std::vector<std::uint8_t> edge_dirty;
    std::int32_t first_iter = 0;
    std::int64_t resume_pos = 0;
    double resume_floor = 0.0;
    if (stage2_progress_ != nullptr) {
      first_iter = stage2_progress_->iteration;
      resume_pos = stage2_progress_->next_pos;
      resume_floor = stage2_progress_->min_cost;
      snapshot = std::move(stage2_progress_->snapshot);
      edge_dirty = std::move(stage2_progress_->edge_dirty);
    }

    // Checkpoint cadence (RabidOptions::checkpoint_every_nets): write a
    // resumable snapshot every N processed nets.  Failures warn and
    // continue — losing a checkpoint must not kill a multi-hour run.
    const bool cadence = options_.checkpoint_every_nets > 0 &&
                         !options_.checkpoint_dir.empty();
    std::int64_t nets_since_checkpoint = 0;
    const auto maybe_checkpoint =
        [&](std::int32_t next_iter, std::int64_t next_pos,
            const std::vector<std::uint8_t>* dirty_mask, double floor) {
          if (!cadence ||
              nets_since_checkpoint < options_.checkpoint_every_nets) {
            return;
          }
          nets_since_checkpoint = 0;
          Stage2Progress p;
          p.iteration = next_iter;
          p.next_pos = next_pos;
          p.order.reserve(order.size());
          for (const std::size_t i : order) {
            p.order.push_back(static_cast<std::uint32_t>(i));
          }
          p.snapshot = snapshot;
          if (dirty_mask != nullptr) p.edge_dirty = *dirty_mask;
          p.min_cost = floor;
          if (Status s =
                  write_stage2_checkpoint(options_.checkpoint_dir, *this, p);
              !s) {
            std::fprintf(stderr, "warning: stage-2 checkpoint failed: %s\n",
                         s.to_string().c_str());
          }
        };

    // Iteration prologue shared by both engines: refresh the cache,
    // rebuild the dirty-edge mask from the previous iteration's
    // snapshot, then re-snapshot.  A mid-iteration resume replays the
    // persisted bookkeeping instead — recomputing it from the
    // mid-iteration books would diverge from the interrupted run (and
    // point refreshes only ever lowered the floor, so folding the
    // captured value back under refresh_all()'s reproduces it exactly).
    const auto begin_iteration = [&](std::int32_t iter,
                                     bool resumed_mid) -> std::uint64_t {
      cache.refresh_all();
      std::uint64_t dirty_edges = 0;
      if (resumed_mid) {
        cache.lower_min(resume_floor);
        for (const std::uint8_t d : edge_dirty) dirty_edges += d;
        return dirty_edges;
      }
      if (options_.stage2_dirty_filter && iter > 0) {
        edge_dirty.assign(static_cast<std::size_t>(graph_.edge_count()), 0);
        for (tile::EdgeId e = 0; e < graph_.edge_count(); ++e) {
          const auto k = static_cast<std::size_t>(e);
          const bool overflowed =
              graph_.wire_usage(e) > graph_.wire_capacity(e);
          const bool moved =
              std::abs(cache[e] - snapshot[k]) >
              options_.stage2_dirty_threshold * snapshot[k];
          if (overflowed || moved) {
            edge_dirty[k] = 1;
            ++dirty_edges;
          }
        }
      }
      snapshot.assign(cache.values().begin(), cache.values().end());
      return dirty_edges;
    };
    // A net keeps its route unless the congestion picture under it
    // changed: every overflowed edge is dirty, so any net still causing
    // overflow is always ripped up.
    const auto net_dirty = [&](std::size_t i) {
      const route::RouteTree& tree = nets_[i].tree;
      for (const route::RouteNode& n : tree.nodes()) {
        if (n.parent == route::kNoNode) continue;
        const tile::EdgeId e =
            graph_.edge_between(n.tile, tree.node(n.parent).tile);
        if (edge_dirty[static_cast<std::size_t>(e)] != 0) return true;
      }
      return false;
    };
    // Does the net's current tree ride any edge that is overflowed right
    // now (books, not snapshot)?  Drives the sharded engine's
    // iteration-0 selectivity and its boundary escalation.
    const auto net_overflowed = [&](std::size_t i) {
      const route::RouteTree& tree = nets_[i].tree;
      for (const route::RouteNode& n : tree.nodes()) {
        if (n.parent == route::kNoNode) continue;
        const tile::EdgeId e =
            graph_.edge_between(n.tile, tree.node(n.parent).tile);
        if (graph_.wire_usage(e) > graph_.wire_capacity(e)) return true;
      }
      return false;
    };

    if (options_.stage2_shards <= 0) {
      // ---- Serial engine (the golden-pinned legacy loop). ----
      for (std::int32_t iter = first_iter;
           iter < options_.reroute_iterations; ++iter) {
        if (deadline_hit()) break;  // per-pass cancellation point
        obs::ScopedTimer iter_timer("stage2 iteration", "stage");
        obs::count(obs::Counter::kStage2Iterations);
        const bool resumed_mid = iter == first_iter && resume_pos > 0;
        const bool filter = options_.stage2_dirty_filter && iter > 0;
        const std::uint64_t dirty_edges = begin_iteration(iter, resumed_mid);
        std::uint64_t ripped = 0;
        std::uint64_t kept = 0;
        for (std::size_t k =
                 resumed_mid ? static_cast<std::size_t>(resume_pos) : 0;
             k < order.size(); ++k) {
          const std::size_t i = order[k];
          if (filter && !net_dirty(i)) {
            ++kept;
          } else {
            ++ripped;
            reroute_net(i, router, cache, nullptr);
          }
          ++nets_since_checkpoint;
          maybe_checkpoint(iter, static_cast<std::int64_t>(k) + 1,
                           filter ? &edge_dirty : nullptr, cache.min_cost());
        }
        if (obs::counting()) {
          obs::count(obs::Counter::kStage2DirtyEdges, dirty_edges);
          obs::count(obs::Counter::kStage2NetsRipped, ripped);
          obs::count(obs::Counter::kStage2NetsKept, kept);
        }
        if (graph_.wire_feasible()) break;
        // Boundary checkpoint: next iteration, position 0, no mask (the
        // resume recomputes it from the persisted snapshot).
        maybe_checkpoint(iter + 1, 0, nullptr, 0.0);
      }
    } else {
      // ---- Region-sharded engine (RabidOptions::stage2_shards). ----
      const std::int32_t K = std::min(
          options_.stage2_shards, std::min(graph_.nx(), graph_.ny()));
      const tile::RegionGrid regions(graph_, K);
      const auto R = static_cast<std::size_t>(regions.region_count());
      // Interior-edge lists: edge e belongs to region r iff both of its
      // endpoints do.  A region-local net's uncommit/reroute/commit
      // touches only these, which is what makes shards disjoint.
      std::vector<std::vector<tile::EdgeId>> interior(R);
      for (tile::EdgeId e = 0; e < graph_.edge_count(); ++e) {
        const auto [a, b] = graph_.edge_tiles(e);
        const std::int32_t ra = regions.region_of(a);
        if (ra == regions.region_of(b)) {
          interior[static_cast<std::size_t>(ra)].push_back(e);
        }
      }
      // Router hand-out: one per concurrently live shard (bounded by
      // the pool width, not the region count — router scratch is the
      // per-shard memory cost).  Scratch is stamped, so which instance
      // a region draws cannot affect its routes.
      std::mutex router_mu;
      std::vector<std::unique_ptr<route::MazeRouter>> idle_routers;
      const auto acquire_router = [&]() -> std::unique_ptr<route::MazeRouter> {
        {
          std::lock_guard<std::mutex> lock(router_mu);
          if (!idle_routers.empty()) {
            std::unique_ptr<route::MazeRouter> r =
                std::move(idle_routers.back());
            idle_routers.pop_back();
            return r;
          }
        }
        return std::make_unique<route::MazeRouter>(graph_);
      };
      const auto release_router = [&](std::unique_ptr<route::MazeRouter> r) {
        std::lock_guard<std::mutex> lock(router_mu);
        idle_routers.push_back(std::move(r));
      };

      std::vector<std::vector<std::size_t>> local(R);
      // Boundary-crossing nets, replayed serially: (net, escalated).
      // An escalated net — still overflow-touching at iteration >= 1 —
      // routes truly unconfined; everything else is clipped to its own
      // tree's bounding box plus a detour halo (see the replay loop).
      std::vector<std::pair<std::size_t, bool>> boundary;
      std::vector<double> floors(R, 0.0);
      for (std::int32_t iter = first_iter;
           iter < options_.reroute_iterations; ++iter) {
        if (deadline_hit()) break;  // per-pass cancellation point
        obs::ScopedTimer iter_timer("stage2 iteration", "stage");
        obs::count(obs::Counter::kStage2Iterations);
        const bool filter = options_.stage2_dirty_filter && iter > 0;
        const std::uint64_t dirty_edges =
            begin_iteration(iter, /*resumed_mid=*/false);
        // Classify: a net is region-local iff every tile of its current
        // tree (which spans all its pins) sits in one region.  Local
        // nets keep the delay order within their shard; the boundary
        // replay is ordered by net id — both orders are fixed before
        // any routing, so the thread schedule cannot leak into results.
        //
        // Iteration 0 is overflow-selective (when the dirty filter is
        // enabled): stage 1 leaves congestion on a localized edge set,
        // so only nets actually riding an overflowed edge are ripped up
        // — everything else keeps its stage-1 tree, which is what makes
        // the sharded engine cheaper than the legacy full first pass.
        // From iteration 1 on, a net that is *still* overflow-touching
        // escalates to the unconfined boundary pass: a net whose region
        // has no spare capacity must be free to leave it, or it would
        // stay overflowed behind the confined search forever.
        const bool selective = options_.stage2_dirty_filter;
        for (std::vector<std::size_t>& l : local) l.clear();
        boundary.clear();
        std::uint64_t kept = 0;
        for (const std::size_t i : order) {
          const route::RouteTree& tree = nets_[i].tree;
          if (tree.empty()) continue;
          const bool over = selective && net_overflowed(i);
          if (selective && iter == 0 && !over) {
            ++kept;
            ++nets_since_checkpoint;
            continue;
          }
          if (filter && iter > 0 && !net_dirty(i)) {
            ++kept;
            ++nets_since_checkpoint;
            continue;
          }
          std::int32_t region =
              over && iter > 0 ? -1 : regions.region_of(tree.node(0).tile);
          for (const route::RouteNode& n : tree.nodes()) {
            if (region < 0 || regions.region_of(n.tile) != region) {
              region = -1;
              break;
            }
          }
          if (region >= 0) {
            local[static_cast<std::size_t>(region)].push_back(i);
          } else {
            boundary.emplace_back(i, over && iter > 0);
          }
          ++nets_since_checkpoint;
        }
        std::sort(boundary.begin(), boundary.end());
        std::uint64_t local_count = 0;
        for (const std::vector<std::size_t>& l : local) {
          local_count += l.size();
        }
        // The bounding-box clip: any route that could still meet the
        // net's length limit lives inside its current tree's bbox plus
        // a halo of L_i tiles, so the wavefront is confined to O(net)
        // tiles instead of O(region) or O(chip).  Deterministic — a
        // pure function of the net's pre-rip tree.
        const auto halo_span = [&](std::size_t i) {
          const route::RouteTree& tree = nets_[i].tree;
          geom::TileCoord lo = graph_.coord_of(tree.node(0).tile);
          geom::TileCoord hi = lo;
          for (const route::RouteNode& n : tree.nodes()) {
            const geom::TileCoord c = graph_.coord_of(n.tile);
            lo.x = std::min(lo.x, c.x);
            lo.y = std::min(lo.y, c.y);
            hi.x = std::max(hi.x, c.x);
            hi.y = std::max(hi.y, c.y);
          }
          const std::int32_t halo = std::max<std::int32_t>(
              8, design_.length_limit(static_cast<netlist::NetId>(i)));
          return tile::TileSpan{
              std::max(lo.x - halo, 0), std::max(lo.y - halo, 0),
              std::min(hi.x + halo, graph_.nx() - 1),
              std::min(hi.y + halo, graph_.ny() - 1)};
        };
        // Parallel phase: each shard owns its region's interior edges —
        // of the books and of the cache — plus a private A* floor
        // seeded from the shard's own minimum, which is tighter than
        // the global bound.  Each net is further clipped to its halo
        // span intersected with the region, which preserves the
        // disjointness of concurrent shards' edge reads and writes.
        const auto run_region = [&](std::size_t r) {
          if (local[r].empty()) return;
          std::unique_ptr<route::MazeRouter> mr = acquire_router();
          const tile::TileSpan rs = regions.span(static_cast<std::int32_t>(r));
          floors[r] = astar ? cache.min_over(interior[r]) : 0.0;
          for (const std::size_t i : local[r]) {
            tile::TileSpan s = halo_span(i);
            s.x0 = std::max(s.x0, rs.x0);
            s.y0 = std::max(s.y0, rs.y0);
            s.x1 = std::min(s.x1, rs.x1);
            s.y1 = std::min(s.y1, rs.y1);
            mr->confine(s);
            reroute_net(i, *mr, cache, &floors[r]);
          }
          release_router(std::move(mr));
        };
        if (pool_ != nullptr) {
          pool_->parallel_for(0, R, run_region);
        } else {
          for (std::size_t r = 0; r < R; ++r) run_region(r);
        }
        // Fold the shard floors back into the global bound, then replay
        // the boundary-crossing nets serially, unconfined.
        if (astar) {
          for (std::size_t r = 0; r < R; ++r) {
            if (!local[r].empty()) cache.lower_min(floors[r]);
          }
        }
        // A congested reroute is what blows a wavefront up — the A*
        // floor is a chip-wide lower bound, so a path priced through
        // overflowed edges looks arbitrarily far from done and the
        // search floods.  Clip each boundary net to its current tree's
        // bounding box plus a detour halo of its own length limit: any
        // route that could still meet L_i lives inside that clip, and a
        // net whose clip has no spare capacity comes back overflowed
        // and escalates to a truly unconfined pass next iteration.
        // Selective mode only — without the overflow classification
        // there is no escalation path out of a too-tight clip.
        for (const auto& [i, escalated] : boundary) {
          if (selective && !escalated) {
            router.confine(halo_span(i));
          } else {
            router.unconfine();
          }
          reroute_net(i, router, cache, nullptr);
        }
        router.unconfine();
        if (obs::counting()) {
          obs::count(obs::Counter::kStage2DirtyEdges, dirty_edges);
          obs::count(obs::Counter::kStage2NetsRipped,
                     local_count + boundary.size());
          obs::count(obs::Counter::kStage2NetsKept, kept);
          obs::count(obs::Counter::kStage2LocalNets, local_count);
          obs::count(obs::Counter::kStage2BoundaryNets, boundary.size());
        }
        if (graph_.wire_feasible()) break;
        maybe_checkpoint(iter + 1, 0, nullptr, 0.0);
      }
      if (obs::counting()) {
        std::uint64_t scratch = 0;
        for (const std::unique_ptr<route::MazeRouter>& r : idle_routers) {
          scratch += r->memory_bytes();
        }
        obs::gauge_max(obs::GaugeId::kMazeScratchBytes, scratch);
      }
    }
    if (obs::counting()) {
      obs::gauge_max(obs::GaugeId::kEdgeCostCacheBytes, cache.memory_bytes());
      obs::gauge_max(obs::GaugeId::kMazeScratchBytes, router.memory_bytes());
    }
  }
  stage2_progress_.reset();
  if (options_.congestion_post_after_stage2) {
    // The Table-V post-pass: spread monotone two-paths at constant
    // wirelength while no buffers pin the routes yet.  (The pass edits
    // usage one track at a time, so wide-wire nets sit it out.)
    std::vector<std::size_t> eligible;
    std::vector<route::RouteTree> trees;
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      if (design_.net(static_cast<netlist::NetId>(i)).width != 1) continue;
      if (nets_[i].tree.empty()) continue;  // deadline-cancelled in stage 1
      eligible.push_back(i);
      trees.push_back(std::move(nets_[i].tree));
    }
    minimize_congestion(graph_, trees);
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      const std::size_t i = eligible[k];
      nets_[i].tree = std::move(trees[k]);
      nets_[i].meets_length_rule =
          meets_rule(nets_[i].tree, {},
                     design_.length_limit(static_cast<netlist::NetId>(i)));
    }
  }
  refresh_delays();
  record_memory_gauges();
  StageStats stats = snapshot("2", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("2", /*final_stage=*/false);
  return stats;
}

void Rabid::buffer_net(std::size_t index, const std::vector<double>& demand,
                       const buffer::InsertionResult* first_attempt) {
  NetState& state = nets_[index];
  const std::int32_t L =
      design_.length_limit(static_cast<netlist::NetId>(index));

  // Tiles the DP must avoid because an earlier attempt oversubscribed
  // them within this one net (q is computed per net, so a single net can
  // otherwise claim more sites than a tile has left; see Section III-C's
  // multiple-buffers-per-tile remark).
  std::vector<tile::TileId> forbidden;
  for (int attempt = 0;; ++attempt) {
    RABID_ASSERT_MSG(attempt < 64, "buffer commit failed to converge");
    if (attempt > 0) obs::count(obs::Counter::kBufferCommitRetries);
    const auto q = [&](tile::TileId t) {
      if (std::find(forbidden.begin(), forbidden.end(), t) != forbidden.end())
        return tile::kInfCost;
      return graph_.buffer_cost(t, demand[static_cast<std::size_t>(t)]);
    };
    buffer::InsertionResult result =
        attempt == 0 && first_attempt != nullptr
            ? *first_attempt
            : buffer::insert_buffers_planned_relaxed(state.tree, L, q,
                                                     options_.buffer_library);

    // Count proposed buffers per tile; find oversubscribed tiles.
    bool ok = true;
    std::vector<std::pair<tile::TileId, std::int32_t>> per_tile;
    for (const route::BufferPlacement& b : result.buffers) {
      const tile::TileId t = state.tree.node(b.node).tile;
      auto it = std::find_if(per_tile.begin(), per_tile.end(),
                             [&](const auto& p) { return p.first == t; });
      if (it == per_tile.end()) {
        per_tile.emplace_back(t, 1);
      } else {
        ++it->second;
      }
    }
    for (const auto& [t, count] : per_tile) {
      if (count > graph_.site_supply(t) - graph_.site_usage(t)) {
        forbidden.push_back(t);
        ok = false;
      }
    }
    if (!ok) continue;

    for (const auto& [t, count] : per_tile) {
      for (std::int32_t k = 0; k < count; ++k) graph_.add_buffer(t);
    }
    obs::count(obs::Counter::kBuffersCommitted,
               static_cast<std::uint64_t>(result.buffers.size()));
    state.buffers = std::move(result.buffers);
    // Unit libraries leave the tags empty (the historical state, and
    // what the bit-identical goldens pin); the multi-type engine's
    // chosen types become electrical cells so delays and dumps see them.
    state.buffer_types.clear();
    for (const std::int32_t t : result.types) {
      state.buffer_types.push_back(
          options_.buffer_library.electrical_of(static_cast<std::size_t>(t)));
    }
    state.meets_length_rule = result.feasible && result.effective_limit <= L;
    return;
  }
}

StageStats Rabid::rebuffer_timing_driven(std::size_t worst_nets,
                                         const timing::BufferLibrary& lib,
                                         bool use_inverters) {
  RABID_ASSERT_MSG(stage3_done_, "timing-driven rebuffering needs buffers");
  obs::ScopedTimer obs_timer("rebuffer_vG", "stage");
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::size_t> order = nets_by_delay(/*ascending=*/false);
  if (order.size() > worst_nets) order.resize(worst_nets);

  for (const std::size_t i : order) {
    // Per-net cancellation point: a skipped net keeps its complete
    // stage-3/4 buffering.
    if (deadline_hit()) break;
    NetState& state = nets_[i];
    if (state.tree.empty()) continue;
    // Return this net's sites to the pool; its old solution stays
    // reachable, so the optimum can only improve.
    obs::count(obs::Counter::kBuffersRemoved,
               static_cast<std::uint64_t>(state.buffers.size()));
    for (const route::BufferPlacement& b : state.buffers) {
      graph_.remove_buffer(state.tree.node(b.node).tile);
    }
    state.buffers.clear();
    state.buffer_types.clear();

    std::vector<tile::TileId> forbidden;
    for (int attempt = 0;; ++attempt) {
      RABID_ASSERT_MSG(attempt < 64, "vG commit failed to converge");
      if (attempt > 0) obs::count(obs::Counter::kBufferCommitRetries);
      const buffer::TileAllowFn allow = [&](tile::TileId t) {
        if (graph_.site_usage(t) >= graph_.site_supply(t)) return false;
        return std::find(forbidden.begin(), forbidden.end(), t) ==
               forbidden.end();
      };
      const timing::Technology tech = timing::scaled_for_width(
          options_.tech, design_.net(static_cast<netlist::NetId>(i)).width);
      buffer::TimingDrivenResult result =
          use_inverters
              ? buffer::van_ginneken_with_inverters(state.tree, graph_, lib,
                                                    allow, tech)
              : buffer::van_ginneken(state.tree, graph_, lib, allow, tech);

      bool ok = true;
      std::vector<std::pair<tile::TileId, std::int32_t>> per_tile;
      for (const route::BufferPlacement& b : result.buffers) {
        const tile::TileId t = state.tree.node(b.node).tile;
        auto it = std::find_if(per_tile.begin(), per_tile.end(),
                               [&](const auto& p) { return p.first == t; });
        if (it == per_tile.end()) {
          per_tile.emplace_back(t, 1);
        } else {
          ++it->second;
        }
      }
      for (const auto& [t, count] : per_tile) {
        if (count > graph_.site_supply(t) - graph_.site_usage(t)) {
          forbidden.push_back(t);
          ok = false;
        }
      }
      if (!ok) continue;

      for (const auto& [t, count] : per_tile) {
        for (std::int32_t k = 0; k < count; ++k) graph_.add_buffer(t);
      }
      obs::count(obs::Counter::kBuffersCommitted,
                 static_cast<std::uint64_t>(result.buffers.size()));
      state.buffers = std::move(result.buffers);
      state.buffer_types = std::move(result.types);
      break;
    }
    // Timing won; report the length rule honestly.
    state.meets_length_rule =
        meets_rule(state.tree, state.buffers,
                   design_.length_limit(static_cast<netlist::NetId>(i)));
  }
  refresh_delays();
  record_memory_gauges();
  StageStats stats = snapshot("vG", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("vG", /*final_stage=*/true);
  return stats;
}

StageStats Rabid::run_stage3() {
  RABID_ASSERT_MSG(stage1_done_, "stage 3 requires a routing");
  obs::ScopedTimer obs_timer("stage3", "stage");
  const auto start = std::chrono::steady_clock::now();

  // p(v): expected demand from unprocessed nets — 1/L_i per crossed tile.
  std::vector<double> demand(static_cast<std::size_t>(graph_.tile_count()),
                             0.0);
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double p =
        1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
    for (const route::RouteNode& n : nets_[i].tree.nodes()) {
      demand[static_cast<std::size_t>(n.tile)] += p;
    }
  }

  // Highest-delay net first (Section III-C); alternatives for ablation.
  std::vector<std::size_t> order;
  switch (options_.stage3_order) {
    case Stage3Order::kDescendingDelay:
      order = nets_by_delay(/*ascending=*/false);
      break;
    case Stage3Order::kAscendingDelay:
      order = nets_by_delay(/*ascending=*/true);
      break;
    case Stage3Order::kAsGiven:
      order.resize(nets_.size());
      std::iota(order.begin(), order.end(), 0U);
      break;
  }
  if (pool_ != nullptr) {
    assign_buffers_parallel(order, demand);
  } else {
    for (std::size_t k = 0; k < order.size(); ++k) {
      // Per-net cancellation point: remaining nets keep their legal
      // stage-2 routes, honestly flagged (no buffers, rule unmet).
      if (deadline_hit()) {
        const auto cancelled = static_cast<std::int64_t>(order.size() - k);
        nets_cancelled_ += cancelled;
        obs::count(obs::Counter::kDeadlineNetsCancelled,
                   static_cast<std::uint64_t>(cancelled));
        break;
      }
      const std::size_t i = order[k];
      if (nets_[i].tree.empty()) continue;
      // The current net no longer counts as "future demand".
      const double p =
          1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        demand[static_cast<std::size_t>(n.tile)] -= p;
      }
      buffer_net(i, demand);
    }
  }
  refresh_delays();
  stage3_done_ = true;
  record_memory_gauges();
  StageStats stats = snapshot("3", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("3", /*final_stage=*/false);
  return stats;
}

void Rabid::assign_buffers_parallel(const std::vector<std::size_t>& order,
                                    std::vector<double>& demand) {
  // Speculative batches: per-net DPs run concurrently against the books
  // as of the batch start; commits then replay serially in `order`.  A
  // net whose tree crossed a tile that gained a buffer earlier in the
  // same batch has stale q-costs and falls back to the serial DP, so
  // the solution is bit-identical to the single-threaded loop at any
  // thread count.
  const std::size_t batch = pool_->size();
  std::vector<std::uint8_t> dirty(
      static_cast<std::size_t>(graph_.tile_count()), 0);
  std::vector<double> scratch;
  for (std::size_t b0 = 0; b0 < order.size(); b0 += batch) {
    // Per-batch cancellation point (a batch is at most pool-size nets,
    // so the granularity matches the serial per-net check).
    if (deadline_hit()) {
      const auto cancelled = static_cast<std::int64_t>(order.size() - b0);
      nets_cancelled_ += cancelled;
      obs::count(obs::Counter::kDeadlineNetsCancelled,
                 static_cast<std::uint64_t>(cancelled));
      break;
    }
    obs::ScopedTimer batch_timer("stage3 batch", "batch");
    const std::size_t count = std::min(batch, order.size() - b0);

    // Demand progression: replicate the serial per-node subtraction
    // order on a copy of the p(v) book, recording each net's
    // post-subtraction values for exactly the tiles its DP prices.
    scratch = demand;
    std::vector<std::unordered_map<tile::TileId, double>> net_demand(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = order[b0 + k];
      const double p =
          1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        scratch[static_cast<std::size_t>(n.tile)] -= p;
      }
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        net_demand[k][n.tile] = scratch[static_cast<std::size_t>(n.tile)];
      }
    }

    // Parallel phase: nothing mutates the graph while the DPs read it.
    std::vector<buffer::InsertionResult> speculated(count);
    pool_->parallel_for(0, count, [&](std::size_t k) {
      const std::size_t i = order[b0 + k];
      if (nets_[i].tree.empty()) return;  // deadline-cancelled in stage 1
      const std::unordered_map<tile::TileId, double>& dm = net_demand[k];
      const auto q = [&](tile::TileId t) {
        const auto it = dm.find(t);
        RABID_ASSERT_MSG(it != dm.end(),
                         "speculative DP priced an off-tree tile");
        return graph_.buffer_cost(t, it->second);
      };
      speculated[k] = buffer::insert_buffers_planned_relaxed(
          nets_[i].tree, design_.length_limit(static_cast<netlist::NetId>(i)),
          q, options_.buffer_library);
    });

    // Serial phase: commits in net order, exactly as the serial loop
    // would.  A speculated result is valid while no earlier commit in
    // this batch placed a buffer in any tile its DP priced.
    std::fill(dirty.begin(), dirty.end(), 0);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = order[b0 + k];
      if (nets_[i].tree.empty()) continue;
      const double p =
          1.0 / design_.length_limit(static_cast<netlist::NetId>(i));
      bool fresh = true;
      for (const route::RouteNode& n : nets_[i].tree.nodes()) {
        demand[static_cast<std::size_t>(n.tile)] -= p;
        if (dirty[static_cast<std::size_t>(n.tile)] != 0) fresh = false;
      }
      obs::count(fresh ? obs::Counter::kStage3SpecHits
                       : obs::Counter::kStage3SpecMisses);
      buffer_net(i, demand, fresh ? &speculated[k] : nullptr);
      for (const route::BufferPlacement& b : nets_[i].buffers) {
        dirty[static_cast<std::size_t>(nets_[i].tree.node(b.node).tile)] = 1;
      }
    }
  }
}

StageStats Rabid::run_stage4() {
  RABID_ASSERT_MSG(stage3_done_, "stage 4 requires stage 3");
  obs::ScopedTimer obs_timer("stage4", "stage");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<double> no_demand(
      static_cast<std::size_t>(graph_.tile_count()), 0.0);
  const bool astar = options_.router_heuristic == RouterHeuristic::kAStar;

  // Flat cost tables so the (tile x L) search pays one load per
  // relaxation.  Wire usage only moves at uncommit/commit, buffer-site
  // usage only at remove_buffer/buffer_net — each point below refreshes
  // exactly the entries it touched.
  route::EdgeCostCache wire_cache(graph_, [this](tile::EdgeId e) {
    return route::soft_wire_cost(graph_, e);
  });
  std::vector<double> site_cost(static_cast<std::size_t>(graph_.tile_count()));
  for (tile::TileId t = 0; t < graph_.tile_count(); ++t) {
    site_cost[static_cast<std::size_t>(t)] = graph_.buffer_cost(t, 0.0);
  }
  // One search object for the whole stage: its stamped (tile x L) scratch
  // warms up once and every later two-path touches only visited states.
  TwoPathSearch search(graph_);

  for (std::int32_t iter = 0; iter < options_.postprocess_iterations;
       ++iter) {
    if (deadline_hit()) break;
    wire_cache.refresh_all();
    for (const std::size_t i : nets_by_delay(/*ascending=*/true)) {
      // Per-net cancellation point: a skipped net keeps its complete
      // (stage-3) solution, so the state stays fully legal.
      if (deadline_hit()) break;
      NetState& state = nets_[i];
      if (state.tree.empty()) continue;
      const std::int32_t L =
          design_.length_limit(static_cast<netlist::NetId>(i));

      // Rip out the net's buffers and wires from the books.
      obs::count(obs::Counter::kBuffersRemoved,
                 static_cast<std::uint64_t>(state.buffers.size()));
      for (const route::BufferPlacement& b : state.buffers) {
        const tile::TileId t = state.tree.node(b.node).tile;
        graph_.remove_buffer(t);
        site_cost[static_cast<std::size_t>(t)] = graph_.buffer_cost(t, 0.0);
      }
      state.buffers.clear();
      const std::int32_t width =
          design_.net(static_cast<netlist::NetId>(i)).width;
      state.tree.uncommit(graph_, width);
      wire_cache.refresh_tree(state.tree);

      // Reroute one two-path at a time with joint wire+buffer costs.
      // The decomposition is recomputed from the live tree after every
      // replacement: a reroute may share arcs with a not-yet-processed
      // two-path, so ripping from a stale snapshot could sever it.
      TileTreeEditor editor(state.tree, graph_);
      route::RouteTree current = editor.rebuild();
      std::vector<std::pair<tile::TileId, tile::TileId>> processed;
      const std::size_t max_rips = 3 * current.two_paths().size() + 4;
      for (std::size_t rip = 0; rip < max_rips; ++rip) {
        const auto paths = current.two_paths();
        const route::RouteTree::TwoPath* next = nullptr;
        std::pair<tile::TileId, tile::TileId> key{tile::kNoTile,
                                                  tile::kNoTile};
        for (const auto& tp : paths) {
          key = {current.node(tp.head).tile, current.node(tp.tail).tile};
          if (std::find(processed.begin(), processed.end(), key) ==
              processed.end()) {
            next = &tp;
            break;
          }
        }
        if (next == nullptr) break;
        processed.push_back(key);
        std::vector<tile::TileId> interior;
        interior.reserve(next->interior.size());
        for (const route::NodeId n : next->interior) {
          interior.push_back(current.node(n).tile);
        }
        editor.remove_path(key.first, interior, key.second);
        const TwoPathRoute reroute = search.route(
            key.second, key.first, L, wire_cache.values(), site_cost,
            options_.stage4_wire_weight, options_.stage4_buffer_weight,
            astar ? wire_cache.min_cost() : 0.0);
        editor.add_path(reroute.tiles);
        current = editor.rebuild();
      }
      state.tree = std::move(current);
      state.tree.commit(graph_, width);
      wire_cache.refresh_tree(state.tree);

      // Re-insert buffers net-wide, exactly as in Stage 3.
      buffer_net(i, no_demand);
      for (const route::BufferPlacement& b : state.buffers) {
        const tile::TileId t = state.tree.node(b.node).tile;
        site_cost[static_cast<std::size_t>(t)] = graph_.buffer_cost(t, 0.0);
      }
    }
  }
  refresh_delays();
  if (obs::counting()) {
    obs::gauge_max(obs::GaugeId::kEdgeCostCacheBytes,
                   wire_cache.memory_bytes());
    obs::gauge_max(obs::GaugeId::kMazeScratchBytes, search.memory_bytes());
  }
  record_memory_gauges();
  StageStats stats = snapshot("4", seconds_since(start));
  stage_history_.push_back(stats);
  maybe_audit("4", /*final_stage=*/true);
  return stats;
}

std::vector<StageStats> Rabid::run_all() {
  std::vector<StageStats> stats;
  stats.push_back(run_stage1());
  // Stage-boundary cancellation points: once the deadline expires the
  // remaining stages are skipped outright and the current (legal,
  // audited-tolerant) partial solution is the result.
  if (!deadline_hit()) stats.push_back(run_stage2());
  if (!deadline_hit()) stats.push_back(run_stage3());
  if (!deadline_hit()) {
    stats.push_back(run_stage4());
  } else {
    // Stage 4 never started, so its final-stage audit never ran — but
    // the partial solution *is* final now, and a kFinal-level run still
    // has to see it audited.
    maybe_audit("deadline", /*final_stage=*/true);
  }
  return stats;
}

}  // namespace rabid::core
