#pragma once

/// \file solution_io.hpp
/// Text dump of a planning solution (routes, buffers, per-net status) —
/// the artifact a downstream flow (global router, placer ECO step)
/// would consume after early planning.
///
/// Format (line-oriented, '#' comments):
///
///   solution DESIGN_NAME TILES_X TILES_Y
///   net NAME ok|fail
///     arc X1 Y1 X2 Y2          # one tile step of the route tree
///     buffer X Y drive|decouple [CELL]
///   end
///
/// Coordinates are tile indices.  Parsing back is supported for the
/// round-trip tests and for external tools that want to re-ingest a
/// solution summary.

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/rabid.hpp"

namespace rabid::core {

void write_solution(std::ostream& out, const netlist::Design& design,
                    const tile::TileGraph& g,
                    std::span<const NetState> nets);

/// A structural summary parsed back from a solution dump.
struct SolutionSummary {
  struct NetSummary {
    std::string name;
    bool ok = false;
    std::int64_t arcs = 0;
    std::int64_t buffers = 0;
  };
  std::string design;
  std::int32_t nx = 0, ny = 0;
  std::vector<NetSummary> nets;

  std::int64_t total_arcs() const;
  std::int64_t total_buffers() const;
};

SolutionSummary read_solution_summary(std::istream& in);

}  // namespace rabid::core
