#pragma once

/// \file solution_io.hpp
/// Text dump of a planning solution (routes, buffers, per-net status) —
/// the artifact a downstream flow (global router, placer ECO step)
/// would consume after early planning.
///
/// Format v2 (line-oriented, '#' comments):
///
///   solution DESIGN_NAME TILES_X TILES_Y
///   net NAME ok|fail
///     arc X1 Y1 X2 Y2          # one tile step, parent tile first
///     buffer X Y drive [CELL]          # drives all branches (Fig. 8)
///     buffer X Y decouple CX CY [CELL] # drives only the arc to (CX,CY)
///   end
///
/// Coordinates are tile indices; arcs are written parent-before-child,
/// so a reader can rebuild each route tree in one pass.  (v1 omitted
/// the decoupled child's tile, which made multi-branch placements
/// ambiguous on re-ingestion.)
///
/// Two readers: read_solution_summary() for cheap structural counts,
/// and read_solution() for a full NetState reconstruction — the
/// round-trip tests feed the latter straight back into the
/// SolutionAuditor (core/audit.hpp) to certify the dump is lossless.

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/rabid.hpp"
#include "core/status.hpp"
#include "timing/buffer_library.hpp"

namespace rabid::core {

void write_solution(std::ostream& out, const netlist::Design& design,
                    const tile::TileGraph& g,
                    std::span<const NetState> nets);

/// A structural summary parsed back from a solution dump.
struct SolutionSummary {
  struct NetSummary {
    std::string name;
    bool ok = false;
    std::int64_t arcs = 0;
    std::int64_t buffers = 0;
  };
  std::string design;
  std::int32_t nx = 0, ny = 0;
  std::vector<NetSummary> nets;

  std::int64_t total_arcs() const;
  std::int64_t total_buffers() const;
};

SolutionSummary read_solution_summary(std::istream& in);

/// A full solution parsed back from a dump.
struct LoadedSolution {
  std::string design;
  std::int32_t nx = 0, ny = 0;
  /// One state per design net, in design order: reconstructed tree,
  /// buffers (and types, when cells were dumped and found in `library`),
  /// the ok/fail flag, and delays re-evaluated exactly as
  /// Rabid::refresh_delays() would.
  std::vector<NetState> nets;
};

/// Reconstructs the complete solution.  Nets must appear in design
/// order under their design names; sink attachment is re-derived from
/// the design's pin locations.  Aborts with a line-numbered message on
/// malformed input.  `library` resolves dumped cell names (pass nullptr
/// to ignore sizing and evaluate with unit buffers); `planning`
/// resolves names `library` doesn't know — the multi-type stage-3/4
/// cells (it must outlive the returned solution: loaded type names view
/// into its storage).
LoadedSolution read_solution(std::istream& in, const netlist::Design& design,
                             const tile::TileGraph& g,
                             const timing::BufferLibrary* library = nullptr,
                             const timing::Technology& tech =
                                 timing::kTech180nm,
                             const buffer::BufferLibrary* planning = nullptr);

/// Hardened variant of read_solution() for untrusted dumps (checkpoint
/// resume, fuzzed files): malformed input comes back as a structured
/// Status with the offending line instead of an abort.  Additionally
/// requires the header to precede any net and the dumped design name to
/// match `design` — a checkpoint written for a different circuit must
/// not silently load.
Result<LoadedSolution> read_solution_checked(
    std::istream& in, const netlist::Design& design, const tile::TileGraph& g,
    const timing::BufferLibrary* library = nullptr,
    const timing::Technology& tech = timing::kTech180nm,
    const buffer::BufferLibrary* planning = nullptr);

}  // namespace rabid::core
