#include "core/sizing.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rabid::core {

namespace {

/// Orders placements sink-side-first (descending node depth), so load
/// changes propagate upstream within one pass.
std::vector<std::size_t> descent_order(const route::RouteTree& tree,
                                       const route::BufferList& buffers) {
  std::vector<std::size_t> order(buffers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tree.depth(buffers[a].node) >
                            tree.depth(buffers[b].node);
                   });
  return order;
}

}  // namespace

SizingResult size_buffers(const route::RouteTree& tree,
                          const route::BufferList& buffers,
                          const timing::BufferLibrary& lib,
                          const tile::TileGraph& g,
                          const timing::Technology& tech,
                          std::int32_t max_passes) {
  SizingResult result;
  const auto cells = lib.buffers();
  RABID_ASSERT_MSG(!cells.empty(), "library has no non-inverting buffer");

  result.types.assign(buffers.size(), lib.type(lib.unit_index()));
  result.before_max_ps =
      timing::evaluate_delay_sized(tree, buffers, result.types, g, tech)
          .max_ps;
  result.after_max_ps = result.before_max_ps;
  if (buffers.empty()) return result;

  const std::vector<std::size_t> order = descent_order(tree, buffers);
  for (std::int32_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (const std::size_t i : order) {
      const timing::BufferType original = result.types[i];
      timing::BufferType best = original;
      double best_delay = result.after_max_ps;
      double best_sum = timing::evaluate_delay_sized(tree, buffers,
                                                     result.types, g, tech)
                            .sum_ps;
      for (const timing::BufferType& cell : cells) {
        result.types[i] = cell;
        const timing::DelayResult d =
            timing::evaluate_delay_sized(tree, buffers, result.types, g,
                                         tech);
        // Primary: max delay; secondary: total delay (break ties toward
        // helping the non-critical sinks too).
        if (d.max_ps < best_delay - 1e-12 ||
            (d.max_ps < best_delay + 1e-12 && d.sum_ps < best_sum - 1e-12)) {
          best_delay = d.max_ps;
          best_sum = d.sum_ps;
          best = cell;
        }
      }
      result.types[i] = best;
      if (best.name != original.name) improved = true;
      result.after_max_ps = best_delay;
    }
    ++result.passes;
    if (!improved) break;
  }
  return result;
}

}  // namespace rabid::core
