#pragma once

/// \file rect.hpp
/// Axis-aligned rectangles in micrometers; used for the chip outline,
/// macro blocks, and blocked (no-buffer-site) regions.

#include "geom/point.hpp"

namespace rabid::geom {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
/// Invariant: lo.x <= hi.x and lo.y <= hi.y.
class Rect {
 public:
  Rect() = default;
  Rect(Point lo, Point hi);

  /// Builds from origin + size. Requires non-negative w, h.
  static Rect from_size(Point origin, double w, double h);

  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }
  double width() const { return hi_.x - lo_.x; }
  double height() const { return hi_.y - lo_.y; }
  double area() const { return width() * height(); }
  Point center() const {
    return {(lo_.x + hi_.x) / 2.0, (lo_.y + hi_.y) / 2.0};
  }

  bool contains(const Point& p) const;
  bool intersects(const Rect& other) const;
  /// Area of overlap with another rectangle (0 if disjoint).
  double overlap_area(const Rect& other) const;
  /// Smallest rectangle containing both.
  Rect bounding_union(const Rect& other) const;
  /// Rectangle grown by `margin` on every side (may be negative; the
  /// result is clamped so it stays a valid rectangle).
  Rect inflated(double margin) const;

  friend bool operator==(const Rect&, const Rect&) = default;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace rabid::geom
