#pragma once

/// \file point.hpp
/// 2-D points in micrometers and in tile coordinates.
///
/// Physical coordinates are double micrometers (floorplans at this stage
/// are continuous); tile coordinates are integer grid indices.

#include <cmath>
#include <compare>
#include <cstdint>

namespace rabid::geom {

/// A physical location on the chip, in micrometers.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

/// Manhattan (L1) distance in micrometers.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance; used only for reporting, never for routing cost.
inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// An integer tile-grid coordinate. (0,0) is the lower-left tile.
struct TileCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(const TileCoord&,
                                   const TileCoord&) = default;
  friend constexpr auto operator<=>(const TileCoord&,
                                    const TileCoord&) = default;
};

/// Manhattan distance in tile units.
inline std::int32_t manhattan(const TileCoord& a, const TileCoord& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace rabid::geom
