#include "geom/rect.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rabid::geom {

Rect::Rect(Point lo, Point hi) : lo_(lo), hi_(hi) {
  RABID_ASSERT_MSG(lo.x <= hi.x && lo.y <= hi.y,
                   "Rect corners must be ordered lo <= hi");
}

Rect Rect::from_size(Point origin, double w, double h) {
  RABID_ASSERT_MSG(w >= 0.0 && h >= 0.0, "Rect size must be non-negative");
  return Rect{origin, {origin.x + w, origin.y + h}};
}

bool Rect::contains(const Point& p) const {
  return p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y;
}

bool Rect::intersects(const Rect& o) const {
  return lo_.x <= o.hi_.x && o.lo_.x <= hi_.x && lo_.y <= o.hi_.y &&
         o.lo_.y <= hi_.y;
}

double Rect::overlap_area(const Rect& o) const {
  const double w =
      std::min(hi_.x, o.hi_.x) - std::max(lo_.x, o.lo_.x);
  const double h =
      std::min(hi_.y, o.hi_.y) - std::max(lo_.y, o.lo_.y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

Rect Rect::bounding_union(const Rect& o) const {
  return Rect{{std::min(lo_.x, o.lo_.x), std::min(lo_.y, o.lo_.y)},
              {std::max(hi_.x, o.hi_.x), std::max(hi_.y, o.hi_.y)}};
}

Rect Rect::inflated(double margin) const {
  Point lo{lo_.x - margin, lo_.y - margin};
  Point hi{hi_.x + margin, hi_.y + margin};
  if (lo.x > hi.x) lo.x = hi.x = (lo.x + hi.x) / 2.0;
  if (lo.y > hi.y) lo.y = hi.y = (lo.y + hi.y) / 2.0;
  return Rect{lo, hi};
}

}  // namespace rabid::geom
