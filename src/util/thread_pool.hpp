#pragma once

/// \file thread_pool.hpp
/// A fixed-size thread pool for the per-net stages of the flow.
///
/// Deliberately work-stealing-free: tasks are pulled from one shared
/// FIFO queue under a mutex.  The per-net units of work (a Prim-Dijkstra
/// construction, a buffer-assignment DP) are large enough that queue
/// contention is noise, and a single queue keeps the scheduling model
/// simple enough to reason about when proving determinism.
///
/// Two entry points:
///   submit(fn)                 -> std::future (exceptions propagate
///                                 through the future)
///   parallel_for(begin, end, f)-> blocks until f(i) ran for every i in
///                                 [begin, end); the calling thread
///                                 participates, and the first exception
///                                 thrown by any f(i) is rethrown here.
///
/// Determinism contract: the pool never reorders results — callers index
/// into pre-sized output vectors by i, so which worker runs which index
/// is irrelevant.  Any cross-net commit ordering is the caller's job
/// (see core::Rabid, which commits in net order after a parallel phase).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace rabid::util {

/// Maps a user-facing thread-count option to an actual pool size:
/// n >= 1 is taken literally; 0 means one thread per hardware thread
/// (never less than 1, even when hardware_concurrency() is unknown).
std::size_t resolve_thread_count(std::int32_t requested);

class ThreadPool {
 public:
  /// Starts `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker.  The returned future
  /// yields fn's result; if fn throws, future.get() rethrows.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [begin, end) across the workers and the
  /// calling thread; returns once all indices completed.  Empty when
  /// begin >= end.  If any fn(i) throws, the first exception (in
  /// completion order) is rethrown here and not-yet-started indices are
  /// abandoned; indices already running finish first.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rabid::util
