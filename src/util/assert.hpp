#pragma once

/// \file assert.hpp
/// Lightweight contract checks used throughout the library.
///
/// RABID_ASSERT is always on (release included): the library is a planning
/// tool, not an inner loop of a router, and silent invariant corruption in
/// a congestion map is far more expensive than the branch.

#include <cstdio>
#include <cstdlib>

namespace rabid::util {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const char* msg) {
  std::fprintf(stderr, "RABID assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rabid::util

#define RABID_ASSERT(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                            \
          : ::rabid::util::assertion_failure(#expr, __FILE__, __LINE__,     \
                                             nullptr))

#define RABID_ASSERT_MSG(expr, msg)                                         \
  ((expr) ? static_cast<void>(0)                                            \
          : ::rabid::util::assertion_failure(#expr, __FILE__, __LINE__, msg))
