#include "util/rng.hpp"

// Header-only in practice; this translation unit anchors the library and
// provides a home for any future out-of-line helpers.

namespace rabid::util {}  // namespace rabid::util
