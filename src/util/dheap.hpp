#pragma once

/// \file dheap.hpp
/// A 4-ary implicit min-heap used by the wavefront searches (maze
/// routing, the stage-4 (tile x L) search, its goal-rooted heuristic
/// field).  Versus std::push_heap/pop_heap on a binary heap this halves
/// the tree depth and keeps each sift-down's children in one cache line,
/// which matters because the searches are pop-dominated (every pop pays
/// a full-depth sift).
///
/// Determinism: entry types order by `operator>` which every caller
/// defines as a *strict total order* (cost first, then an id tie-break),
/// so the minimum element is unique and any correct heap pops the same
/// sequence.  Swapping the heap implementation provably cannot change a
/// route.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rabid::util {

template <typename T, int D = 4>
class DaryHeap {
  static_assert(D >= 2, "heap arity must be at least 2");

 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  std::size_t capacity() const { return v_.capacity(); }
  void clear() { v_.clear(); }
  void reserve(std::size_t n) { v_.reserve(n); }

  /// Pushes that had to reallocate the backing vector since the last
  /// take_regrows().  The heap stays obs-free (util does not depend on
  /// obs); owners flush this into Counter::kHeapRegrows once per pass,
  /// so silent reallocation churn at 512x512 scale becomes visible.
  std::uint64_t take_regrows() {
    const std::uint64_t n = regrows_;
    regrows_ = 0;
    return n;
  }

  void push(T e) {
    std::size_t i = v_.size();
    if (v_.size() == v_.capacity()) ++regrows_;
    v_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!(v_[parent] > v_[i])) break;
      std::swap(v_[parent], v_[i]);
      i = parent;
    }
  }

  /// Removes and returns the minimum element (heap must be non-empty).
  T pop() {
    T top = v_.front();
    T last = v_.back();
    v_.pop_back();
    if (!v_.empty()) {
      std::size_t i = 0;
      const std::size_t n = v_.size();
      while (true) {
        const std::size_t first = i * D + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + D < n ? first + D : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (v_[best] > v_[c]) best = c;
        }
        if (!(last > v_[best])) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = last;
    }
    return top;
  }

 private:
  std::vector<T> v_;
  std::uint64_t regrows_ = 0;
};

}  // namespace rabid::util
