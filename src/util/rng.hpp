#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic decision in the library (benchmark generation, buffer
/// site sprinkling, floorplan annealing) draws from a named Rng stream so
/// that all experiment tables are bit-reproducible across runs and
/// platforms.  The generator is PCG32 (O'Neill, 2014): tiny state, good
/// statistical quality, and — unlike std::mt19937 with std::uniform_*
/// distributions — identical output on every standard library.

#include <cstdint>
#include <string_view>

namespace rabid::util {

/// PCG32 (XSH-RR variant) with explicit, portable integer/real mapping.
class Rng {
 public:
  /// Seeds from a 64-bit value; the stream selector is fixed.
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Seeds from a string (e.g. a benchmark circuit name) via FNV-1a, so
  /// "apte" always yields the same circuit regardless of call order.
  explicit Rng(std::string_view name) : Rng(hash(name)) {}

  void reseed(std::uint64_t seed) {
    state_ = 0U;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform on [0, 2^32).
  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + increment_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1U;
    // 64-bit multiply-shift rejection-free mapping; bias < 2^-32 is
    // irrelevant for workload generation.
    const std::uint64_t wide =
        static_cast<std::uint64_t>(next_u32()) * span;
    return lo + static_cast<std::int64_t>(wide >> 32U);
  }

  /// Uniform real on [0, 1).
  double uniform() {
    return static_cast<double>(next_u32()) * 0x1.0p-32;
  }

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// FNV-1a 64-bit string hash (stable across platforms).
  static constexpr std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  static constexpr std::uint64_t increment_ = 1442695040888963407ULL;
  std::uint64_t state_ = 0;
};

/// Fisher-Yates shuffle using Rng (std::shuffle's draw pattern is not
/// portable across standard libraries).
template <typename Vec>
void shuffle(Vec& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace rabid::util
