#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace rabid::util {

std::size_t resolve_thread_count(std::int32_t requested) {
  if (requested >= 1) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  RABID_ASSERT_MSG(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RABID_ASSERT_MSG(!stopping_, "submit on a stopping thread pool");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  obs::observe(obs::HistogramId::kPoolQueueDepth,
               static_cast<std::uint64_t>(depth));
}

void ThreadPool::worker_loop(std::size_t index) {
  // Label this worker's track in the chrome trace (recorded even when
  // tracing starts later — names are metadata, not events).
  obs::Registry::instance().trace().set_thread_name(
      "pool-worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::count(obs::Counter::kPoolTasks);
    task();
  }
}

namespace {

/// Shared state of one parallel_for call: the body, a work counter,
/// plus the first exception any runner hit.  Owns a *copy* of the body
/// so helper tasks never reference the caller's stack — parallel_for
/// can unwind (a throwing body, a failed submit) while helpers are
/// still draining, and nothing dangles.
struct ForState {
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next;
  std::size_t end;
  std::mutex mu;
  std::exception_ptr error;

  /// Claims and runs indices until the range (or the error budget) is
  /// exhausted; returns how many indices this runner processed.
  /// Never throws: a throwing body records the first exception and
  /// parks the counter so no new index is handed out.
  std::size_t run() {
    std::size_t processed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return processed;
      try {
        fn(i);
        ++processed;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        // Park the counter past the end so no new index is handed out.
        next.store(end, std::memory_order_relaxed);
        return processed;
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  obs::count(obs::Counter::kPoolParallelFors);
  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;

  // One helper task per worker (capped by the range); the calling thread
  // is the final runner, so a pool of size 1 still overlaps with it.
  const std::size_t helpers =
      std::min(workers_.size(), end - begin > 1 ? end - begin - 1 : 0);
  std::vector<std::future<void>> done;
  done.reserve(helpers);
  try {
    for (std::size_t h = 0; h < helpers; ++h) {
      done.push_back(submit([state] {
        obs::ScopedTimer timer("parallel_for worker", "pool");
        obs::count(obs::Counter::kPoolIndicesWorker, state->run());
      }));
    }
    obs::count(obs::Counter::kPoolIndicesInline, state->run());
  } catch (...) {
    // submit() itself failed (allocation, queue assert).  Park the
    // counter and wait for already-launched helpers before unwinding so
    // the pool is quiescent when the caller sees the exception.
    state->next.store(end, std::memory_order_relaxed);
    for (std::future<void>& f : done) f.wait();
    throw;
  }
  for (std::future<void>& f : done) f.get();
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace rabid::util
