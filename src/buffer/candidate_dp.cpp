/// \file candidate_dp.cpp
/// Dominance-pruned candidate-list buffer insertion over b buffer types
/// (the multi-type generalization of the Stage-3 DP; see frontier.hpp
/// for the pruning invariant and library.hpp for type semantics).
///
/// States are (load, cost) candidates kept as pruned frontiers per tree
/// node; transitions mirror the dense engine's advance / decouple /
/// join / drive exactly, except that decouple and drive minimize over
/// the library (type t pays cost_scale_t * q(v) and may drive up to
/// drive_limit(t, L) tile-units).  Loads range over [0, Jcap] with
/// Jcap = max(L, max_drive_limit(L)): states longer than every gate's
/// reach (including the net driver's plain L) can never be consumed.
///
/// The forward pass memoizes every per-child decouple choice (type +
/// source candidate) and the per-node drive choice, so the traceback is
/// table lookups plus exact bitwise-equality split searches — costs in
/// a joined frontier are literally the sums that produced them, so the
/// first (lowest left-load) bitwise match is the deterministic split.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "buffer/frontier.hpp"
#include "buffer/insertion.hpp"
#include "obs/counters.hpp"
#include "util/assert.hpp"

namespace rabid::buffer {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Index of the frontier candidate with load == `load` (exact); -1 when
/// absent.  Pruned frontiers are sorted by load, so binary search.
std::int32_t frontier_find(std::span<const Cand> f, std::int32_t load) {
  const auto it = std::lower_bound(
      f.begin(), f.end(), load,
      [](const Cand& c, std::int32_t l) { return c.load < l; });
  if (it == f.end() || it->load != load) return -1;
  return static_cast<std::int32_t>(std::distance(f.begin(), it));
}

/// A gate choice minimized over the library: type, realized cost, and
/// the source candidate it consumes.
struct GateChoice {
  std::int32_t type = -1;  ///< library index; -1 == no legal choice
  double cost = kInf;      ///< cost_scale_type * q_v + source cost
  std::int32_t src = -1;   ///< index into the source frontier
};

/// Cheapest type for a buffer at v consuming `source`, where type t may
/// carry loads up to `budget_of(t)`.  Ties break toward lower library
/// indices (library order is part of the deterministic contract).
template <typename BudgetFn>
GateChoice best_gate(std::span<const Cand> source, double q_v,
                     const BufferLibrary& lib, const BudgetFn& budget_of) {
  GateChoice best;
  if (!std::isfinite(q_v)) return best;  // no site at v
  for (std::size_t t = 0; t < lib.size(); ++t) {
    const std::int32_t src = frontier_arg_under(source, budget_of(t));
    if (src < 0) continue;
    const double cost = lib.type(t).cost_scale * q_v +
                        source[static_cast<std::size_t>(src)].cost;
    if (cost < best.cost) {
      best = {static_cast<std::int32_t>(t), cost, src};
    }
  }
  return best;
}

/// Bottom-up forward pass + top-down traceback, candidate-list flavor.
class CandidateDp {
 public:
  CandidateDp(const route::RouteTree& tree, std::int32_t L,
              const TileCostFn& q, const BufferLibrary& lib)
      : tree_(tree), lib_(lib), L_(L) {
    RABID_ASSERT_MSG(L >= 1, "length limit must be at least one tile");
    jcap_ = std::max(L, lib.max_drive_limit(L));
    const std::size_t n = tree.node_count();
    q_of_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      q_of_[i] = q(tree.node(static_cast<route::NodeId>(i)).tile);
    }
    nodes_.resize(n);
    for (const route::NodeId v : tree.postorder()) {
      forward_node(v);
    }
  }

  double best_cost() const {
    return frontier_min_under(nodes_[root_index()].c, L_);
  }

  std::uint64_t states_pruned() const { return states_pruned_; }

  /// Frontier candidates materialized (the pruned analogue of the dense
  /// engine's cells_computed).
  std::uint64_t states_kept() const {
    std::uint64_t n = 0;
    for (const NodeData& d : nodes_) {
      n += d.c.size();
      for (const Frontier& f : d.k) n += f.size();
      for (const Frontier& f : d.acc) n += f.size();
    }
    return n;
  }

  /// The root frontier — the oracle battery compares it state-for-state
  /// against exhaustive enumeration.
  const Frontier& root_frontier() const { return nodes_[root_index()].c; }

  void traceback(route::BufferList* buffers,
                 std::vector<std::int32_t>* types) const {
    const std::int32_t arg = frontier_arg_under(nodes_[root_index()].c, L_);
    RABID_ASSERT_MSG(arg >= 0, "traceback on an infeasible DP");
    trace(tree_.root(), arg, buffers, types);
  }

 private:
  struct NodeData {
    Frontier c;                ///< pruned C_v
    std::vector<Frontier> k;   ///< per child: advanced + decoupled
    std::vector<Frontier> acc; ///< join prefixes; acc[0] == k[0]
    std::vector<GateChoice> dec;  ///< per child: decouple choice at v
    GateChoice drive;             ///< drive choice (root: none)
    bool drive_applied = false;   ///< drive strictly improved C_v[0]
  };

  std::size_t root_index() const {
    return static_cast<std::size_t>(tree_.root());
  }

  void forward_node(route::NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    const auto& children = tree_.node(v).children;
    NodeData& d = nodes_[i];
    if (children.empty()) {
      d.c = {Cand{0, 0.0}};  // the sink/leaf frontier: zero wire, zero cost
      return;
    }
    const double q_v = q_(v);
    const std::size_t m = children.size();
    d.k.resize(m);
    d.acc.resize(m);
    d.dec.resize(m);
    for (std::size_t s = 0; s < m; ++s) {
      const Frontier& cw = nodes_[static_cast<std::size_t>(children[s])].c;
      std::vector<Cand> states;
      states.reserve(cw.size() + 1);
      // Advance: one more tile of wire hangs at v.
      for (const Cand& c : cw) {
        if (c.load + 1 <= jcap_) states.push_back({c.load + 1, c.cost});
      }
      // Decouple: a type-t buffer at v drives the 1-tile arc plus the
      // child's load, so the source budget is drive_limit(t, L) - 1.
      d.dec[s] = best_gate(cw, q_v, lib_, [&](std::size_t t) {
        return lib_.drive_limit(t, L_) - 1;
      });
      if (d.dec[s].type >= 0) states.push_back({0, d.dec[s].cost});
      d.k[s] = prune_frontier(states, &states_pruned_);
    }
    d.acc[0] = d.k[0];
    for (std::size_t s = 1; s < m; ++s) {
      // Join: unbuffered loads of the two branch groups add at v.
      std::vector<Cand> states;
      states.reserve(d.acc[s - 1].size() * d.k[s].size());
      for (const Cand& a : d.acc[s - 1]) {
        for (const Cand& b : d.k[s]) {
          if (a.load + b.load <= jcap_) {
            states.push_back({a.load + b.load, a.cost + b.cost});
          }
        }
      }
      d.acc[s] = prune_frontier(states, &states_pruned_);
    }
    d.c = d.acc[m - 1];
    // Drive: a buffer in series at v (never at the net driver itself).
    if (v != tree_.root() && m >= 2) {
      d.drive = best_gate(d.acc[m - 1], q_v, lib_, [&](std::size_t t) {
        return lib_.drive_limit(t, L_);
      });
      if (d.drive.type >= 0 &&
          d.drive.cost < frontier_min_under(d.c, 0)) {
        d.drive_applied = true;
        std::vector<Cand> states(d.c.begin(), d.c.end());
        states.push_back({0, d.drive.cost});
        d.c = prune_frontier(states, &states_pruned_);
      }
    }
  }

  double q_(route::NodeId v) const { return q_of_[static_cast<std::size_t>(v)]; }

  void trace(route::NodeId v, std::int32_t ci, route::BufferList* buffers,
             std::vector<std::int32_t>* types) const {
    const auto i = static_cast<std::size_t>(v);
    const auto& children = tree_.node(v).children;
    if (children.empty()) return;
    const NodeData& d = nodes_[i];
    const std::size_t m = children.size();
    Cand target = d.c[static_cast<std::size_t>(ci)];

    // Was this candidate the drive option?  The drive candidate has
    // load 0 and, when applied, is *strictly* cheaper than any joined
    // load-0 state — so bitwise identity on cost resolves it.
    if (d.drive_applied && target.load == 0 && target.cost == d.drive.cost) {
      buffers->push_back({v, route::kNoNode});
      types->push_back(d.drive.type);
      target = d.acc[m - 1][static_cast<std::size_t>(d.drive.src)];
    }

    // Unfold the join, last child first: the target candidate is
    // literally (ja + jb, ca + cb) for some pair, so scan splits by
    // ascending left load and take the first bitwise cost match.
    std::int32_t j = target.load;
    double c = target.cost;
    for (std::size_t s = m; s-- > 1;) {
      const Frontier& left = d.acc[s - 1];
      const Frontier& right = d.k[s];
      std::int32_t la = -1, rb = -1;
      for (std::size_t x = 0; x < left.size() && left[x].load <= j; ++x) {
        const std::int32_t b = frontier_find(right, j - left[x].load);
        if (b >= 0 &&
            left[x].cost + right[static_cast<std::size_t>(b)].cost == c) {
          la = static_cast<std::int32_t>(x);
          rb = b;
          break;
        }
      }
      RABID_ASSERT_MSG(la >= 0, "join traceback lost the optimal split");
      resolve_child(v, s, rb, buffers, types);
      j = left[static_cast<std::size_t>(la)].load;
      c = left[static_cast<std::size_t>(la)].cost;
    }
    resolve_child(v, 0, frontier_find(d.k[0], j), buffers, types);
  }

  /// Child slot s consumed K candidate `ki`: load 0 is the decouple
  /// option (advance always produces load >= 1); otherwise undo the
  /// one-tile advance — the pre-advance candidate is in C_w verbatim.
  void resolve_child(route::NodeId v, std::size_t s, std::int32_t ki,
                     route::BufferList* buffers,
                     std::vector<std::int32_t>* types) const {
    const auto i = static_cast<std::size_t>(v);
    const NodeData& d = nodes_[i];
    const route::NodeId w = tree_.node(v).children[s];
    RABID_ASSERT_MSG(ki >= 0, "child traceback lost its K candidate");
    const Cand kc = d.k[s][static_cast<std::size_t>(ki)];
    if (kc.load == 0) {
      buffers->push_back({v, w});
      types->push_back(d.dec[s].type);
      trace(w, d.dec[s].src, buffers, types);
    } else {
      const Frontier& cw = nodes_[static_cast<std::size_t>(w)].c;
      const std::int32_t src = frontier_find(cw, kc.load - 1);
      RABID_ASSERT_MSG(src >= 0, "advance traceback lost its source");
      trace(w, src, buffers, types);
    }
  }

  const route::RouteTree& tree_;
  const BufferLibrary& lib_;
  std::int32_t L_;
  std::int32_t jcap_ = 0;
  std::vector<double> q_of_;  ///< q(v) resolved once per node
  std::vector<NodeData> nodes_;
  std::uint64_t states_pruned_ = 0;
};

}  // namespace

InsertionResult insert_buffers_lib(const route::RouteTree& tree,
                                   std::int32_t L, const TileCostFn& q,
                                   const BufferLibrary& lib) {
  RABID_ASSERT_MSG(!tree.empty(), "cannot buffer an empty route");
  InsertionResult result;
  result.effective_limit = L;
  const CandidateDp dp(tree, L, q, lib);
  result.cost = dp.best_cost();
  result.feasible = std::isfinite(result.cost);
  if (result.feasible) dp.traceback(&result.buffers, &result.types);
  if (obs::counting()) {
    obs::count(obs::Counter::kDpNets);
    obs::count(obs::Counter::kDpCellsComputed, dp.states_kept());
    obs::count(obs::Counter::kDpStatesPruned, dp.states_pruned());
    obs::observe(obs::HistogramId::kDpCellsPerNet, dp.states_kept());
  }
  return result;
}

InsertionResult insert_buffers_lib_relaxed(const route::RouteTree& tree,
                                           std::int32_t L,
                                           const TileCostFn& q,
                                           const BufferLibrary& lib) {
  InsertionResult result = insert_buffers_lib(tree, L, q, lib);
  std::int32_t limit = L;
  const auto wirelength = static_cast<std::int32_t>(tree.wirelength_tiles());
  while (!result.feasible) {
    RABID_ASSERT_MSG(limit <= 2 * std::max(wirelength, std::int32_t{1}),
                     "relaxation failed to converge");
    limit *= 2;
    obs::count(obs::Counter::kDpLimitRelaxations);
    result = insert_buffers_lib(tree, limit, q, lib);
    result.effective_limit = limit;
  }
  return result;
}

std::vector<Cand> dp_root_frontier_lib(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q,
                                       const BufferLibrary& lib) {
  RABID_ASSERT_MSG(!tree.empty(), "cannot buffer an empty route");
  const CandidateDp dp(tree, L, q, lib);
  return dp.root_frontier();
}

InsertionResult insert_buffers_planned(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q,
                                       const BufferLibrary& lib) {
  if (lib.is_unit()) return insert_buffers(tree, L, q);
  return insert_buffers_lib(tree, L, q, lib);
}

InsertionResult insert_buffers_planned_relaxed(const route::RouteTree& tree,
                                               std::int32_t L,
                                               const TileCostFn& q,
                                               const BufferLibrary& lib) {
  if (lib.is_unit()) return insert_buffers_relaxed(tree, L, q);
  return insert_buffers_lib_relaxed(tree, L, q, lib);
}

}  // namespace rabid::buffer
