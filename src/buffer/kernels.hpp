#pragma once

/// \file kernels.hpp
/// The span kernels under the stage-3/4 buffer-insertion DP: dense
/// min / argmin / min-plus-convolution primitives over the flat
/// structure-of-arrays cost rows (`c_`/`k_`/`acc_` in insertion.cpp).
///
/// Two implementations sit behind one function-pointer dispatch chosen
/// once at startup: a portable scalar path written as plain
/// reduction loops the compiler can autovectorize, and a hand-written
/// AVX2 path (x86-64 with GCC/Clang) selected via cpuid.
///
/// **Bit-exactness contract.**  Every kernel computes a minimum over a
/// set of values where each value is either a row element or a single
/// two-operand sum `a[x] + b[j-x]`.  Each sum is one IEEE-754 rounding;
/// `min` over doubles is exact, commutative, and associative (the rows
/// never contain NaN, and never contain -0.0 — all costs are sums of
/// nonnegative terms).  So *any* evaluation order — scalar, unrolled,
/// or 4-wide SIMD with a lane reduction — produces bit-identical
/// results, and the AVX2 path provably cannot change a placement.  The
/// kernels_test battery checks the two backends against each other
/// element-for-element anyway.
///
/// Argmin kernels return the *first* index attaining the minimum (the
/// traceback tie-break the goldens pin).  They run as two passes — a
/// vectorizable value-min, then a first-equal scan — which matches the
/// single-pass strict-< scalar loop exactly: the minimum is one of the
/// elements, so exact equality identifies the same first index, also
/// when every element is +infinity (both conventions yield index 0).

#include <cstdint>
#include <string_view>

namespace rabid::buffer::kernels {

/// Name of the dispatched backend: "avx2" or "scalar".
std::string_view backend();

/// Minimum of v[0..n-1]; +infinity when n == 0.
double range_min(const double* v, std::int32_t n);

/// First index attaining range_min(v, n); 0 when all-infinite (n >= 1).
std::int32_t range_argmin_first(const double* v, std::int32_t n);

/// Truncated min-plus convolution: out[j] = min_{0<=x<=j} a[x] + b[j-x]
/// for j in [0, L].  `out` must not alias `a` or `b`.
void min_plus_join(const double* a, const double* b, std::int32_t L,
                   double* out);

}  // namespace rabid::buffer::kernels
