#include "buffer/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rabid::buffer {

Frontier prune_frontier(std::span<const Cand> states,
                        std::uint64_t* pruned_out) {
  Frontier sorted;
  sorted.reserve(states.size());
  for (const Cand& s : states) {
    if (std::isfinite(s.cost)) sorted.push_back(s);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Cand& a, const Cand& b) {
    if (a.load != b.load) return a.load < b.load;
    return a.cost < b.cost;
  });
  Frontier out;
  out.reserve(sorted.size());
  for (const Cand& s : sorted) {
    if (!out.empty() && out.back().cost <= s.cost) continue;  // dominated
    out.push_back(s);
  }
  if (pruned_out != nullptr) {
    *pruned_out += static_cast<std::uint64_t>(states.size() - out.size());
  }
  return out;
}

double frontier_min_under(std::span<const Cand> frontier,
                          std::int32_t budget) {
  const std::int32_t i = frontier_arg_under(frontier, budget);
  if (i < 0) return std::numeric_limits<double>::infinity();
  return frontier[static_cast<std::size_t>(i)].cost;
}

std::int32_t frontier_arg_under(std::span<const Cand> frontier,
                                std::int32_t budget) {
  // Last entry with load <= budget (loads are strictly increasing).
  const auto it = std::upper_bound(
      frontier.begin(), frontier.end(), budget,
      [](std::int32_t b, const Cand& c) { return b < c.load; });
  if (it == frontier.begin()) return -1;
  return static_cast<std::int32_t>(std::distance(frontier.begin(), it) - 1);
}

}  // namespace rabid::buffer
