#pragma once

/// \file single_sink.hpp
/// A literal transcription of the paper's single-sink algorithm (Fig. 6),
/// kept separate from the general tree DP so that (a) the Fig. 7 worked
/// example can be validated cell-for-cell against the publication and
/// (b) the O(n L) complexity claim can be micro-benchmarked in isolation.
///
/// The chain is given source-to-sink as the buffer costs q of the n route
/// tiles strictly between the source tile and the sink: q[0] is adjacent
/// to the source, q[n-1] is the sink tile itself... see chain layout in
/// single_sink_tables() below.

#include <cstdint>
#include <span>
#include <vector>

namespace rabid::buffer {

/// The DP table of Fig. 7 for a two-pin net.
struct SingleSinkTable {
  /// cost[i][j] = C_{tile i}[j]; tile 0 is adjacent to the source, the
  /// last tile is the sink. Arrays have L entries (j in [0, L-1]),
  /// exactly as printed in Fig. 7.
  std::vector<std::vector<double>> cost;
  /// min over j of C at the source-adjacent tile (Fig. 6 Step 3).
  double optimal = 0.0;
  /// Indices (into q) of the tiles where the optimal solution buffers,
  /// recovered by the traceback Fig. 7 draws with dark lines.
  std::vector<std::int32_t> buffer_tiles;
};

/// Runs Fig. 6 on a chain of `q.size()` tiles between source and sink;
/// q[i] is the buffer cost of tile i counted from the source side
/// (q.back() is the sink's tile; the paper's example keeps the sink as an
/// extra all-zero column, reproduced in cost.back()... the sink column is
/// appended as cost[q.size()]). Requires L >= 1.
SingleSinkTable single_sink_insertion(std::span<const double> q,
                                      std::int32_t L);

}  // namespace rabid::buffer
