#pragma once

/// \file library.hpp
/// The *planning-level* buffer library: the b buffer types the stage-3/4
/// insertion DP chooses between (Li & Shi's multi-type candidate-list
/// formulation, arXiv:0710.4691; buffer sizing per Kallakuri,
/// arXiv:0710.4638).
///
/// This is deliberately distinct from timing::BufferLibrary (the
/// electrical power levels the post-pass sizer picks between): here a
/// type changes the *planning problem itself* —
///
///   * `cost_scale`  multiplies the eq. (2) site cost q(v): a stronger
///     buffer occupies one site but burns more area/power, so the DP
///     should prefer it only where its reach pays for itself.
///   * `drive_scale` multiplies the net's length rule L: a type t gate
///     may drive up to L_t = max(1, floor(drive_scale * L)) tile-units
///     of unbuffered interconnect.  The net driver itself always obeys
///     the plain L.
///
/// The default library holds exactly the paper's single unit type
/// (cost_scale == drive_scale == 1), for which the engine runs the
/// original dense single-type DP bit-for-bit; any other library routes
/// through the dominance-pruned candidate-list engine.
///
/// Each type also carries its electrical payload (timing::BufferType) so
/// the flow's delay model and the solution dump can speak the same
/// names.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "timing/buffer_library.hpp"

namespace rabid::buffer {

struct BufferTypeSpec {
  std::string name;          ///< identity in solutions / audits
  double cost_scale = 1.0;   ///< multiplies q(v); >= 0
  double drive_scale = 1.0;  ///< multiplies L; > 0
  timing::BufferType electrical;  ///< delay-model payload (name mirrors)
};

/// An ordered, immutable set of planning buffer types.  Index 0 is the
/// cheapest-by-convention entry; the DP tie-breaks equal-cost choices
/// toward lower indices, so library order is part of the deterministic
/// contract.
class BufferLibrary {
 public:
  /// The paper's library: one unit type.  This is the RabidOptions
  /// default and makes the whole flow behave exactly as before.
  static BufferLibrary single_unit();

  /// `single_unit` plus one double-reach type at double cost.
  static BufferLibrary paper2();

  /// Four power levels: 0.5x / 1x / 2x / 4x reach with matching cost.
  static BufferLibrary paper4();

  /// Library preset by name ("unit", "paper2", "paper4"); false when
  /// `name` matches no preset.
  static bool preset(std::string_view name, BufferLibrary* out);

  /// Builds a library from explicit specs (validated: nonempty, names
  /// unique and nonempty, cost_scale >= 0, drive_scale > 0).
  explicit BufferLibrary(std::vector<BufferTypeSpec> types);
  BufferLibrary() : BufferLibrary(single_unit()) {}

  std::span<const BufferTypeSpec> types() const { return types_; }
  const BufferTypeSpec& type(std::size_t i) const { return types_.at(i); }
  std::size_t size() const { return types_.size(); }

  /// Type i's electrical payload with its name view bound to *this*
  /// library's storage (the stored spec's view can go stale when a
  /// library is copied, e.g. inside RabidOptions).  The returned value
  /// is valid while this BufferLibrary is alive.
  timing::BufferType electrical_of(std::size_t i) const {
    timing::BufferType t = types_.at(i).electrical;
    t.name = types_.at(i).name;
    return t;
  }

  /// True when the library is exactly {unit}: the dense single-type DP
  /// applies and existing goldens must reproduce bit-for-bit.
  bool is_unit() const;

  /// Per-type length limit for a net with length rule L:
  /// max(1, floor(drive_scale * L)).
  std::int32_t drive_limit(std::size_t i, std::int32_t L) const;

  /// Largest drive_limit over all types (the DP's j range).
  std::int32_t max_drive_limit(std::int32_t L) const;

  /// Index of the type named `name`; -1 when absent.
  std::int32_t index_of(std::string_view name) const;

 private:
  std::vector<BufferTypeSpec> types_;
};

}  // namespace rabid::buffer
