#pragma once

/// \file frontier.hpp
/// Dominance-pruned candidate frontiers — the state representation of
/// the multi-type buffer-insertion DP (Li & Shi, arXiv:0710.4691).
///
/// A DP state at a tree node is a pair (load j, cost c): some buffering
/// of the subtree leaves j tile-units of unbuffered wire hanging at the
/// node at total site cost c.  State (j1, c1) *dominates* (j2, c2) when
/// j1 <= j2 and c1 <= c2: every legal continuation of the dominated
/// state (advancing wire, decoupling under some type limit, driving)
/// admits the dominating state too, at no more cost — so dominated
/// states can be dropped before they propagate.
///
/// **Pruning invariant (the losslessness contract the property tests
/// pin):** for every downstream load budget x,
///
///   min { c : (j, c) in frontier, j <= x }
///
/// is identical over the full state set and its pruned frontier.  The
/// pruned frontier is exactly the lower-left staircase: j strictly
/// increasing, cost strictly decreasing.

#include <cstdint>
#include <span>
#include <vector>

namespace rabid::buffer {

/// One undominated DP state: `cost` of the cheapest known buffering
/// leaving `load` unbuffered tile-units at the node.
struct Cand {
  std::int32_t load = 0;
  double cost = 0.0;
};

/// A pruned frontier: loads strictly increasing, costs strictly
/// decreasing (ties collapse toward the smaller load).
using Frontier = std::vector<Cand>;

/// Builds the dominance-pruned frontier of an arbitrary state set
/// (unordered, duplicates allowed, +inf costs dropped).  If `pruned_out`
/// is non-null it receives the number of states dropped.
Frontier prune_frontier(std::span<const Cand> states,
                        std::uint64_t* pruned_out = nullptr);

/// min { cost : (load, cost) in frontier, load <= budget }; +infinity
/// when no state fits.  Works on pruned frontiers (sorted by load) in
/// O(log n), which is how the DP evaluates decouple/drive options.
double frontier_min_under(std::span<const Cand> frontier,
                          std::int32_t budget);

/// The frontier candidate realizing frontier_min_under (the last entry
/// with load <= budget); -1 when none.  Traceback helper.
std::int32_t frontier_arg_under(std::span<const Cand> frontier,
                                std::int32_t budget);

}  // namespace rabid::buffer
