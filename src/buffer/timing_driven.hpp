#pragma once

/// \file timing_driven.hpp
/// Timing-driven buffer insertion: van Ginneken's algorithm [18] with a
/// buffer library, on the tile-level route tree.
///
/// RABID is deliberately timing-ignorant (Section II: early floorplan
/// timing is meaningless), but the paper prescribes the follow-up:
/// "later in the design flow, when more accurate timing information is
/// available, one can rip up the buffering solution for a given net and
/// recompute a potentially better solution via a timing-driven buffering
/// algorithm."  This module is that algorithm; core::Rabid wires it to
/// the site books via rebuffer_timing_driven().
///
/// Classic bottom-up candidate propagation: each tree point keeps a
/// pruned list of (downstream capacitance, worst slack) pairs; wires
/// degrade slack by the pi-model Elmore term; a buffer option caps the
/// load at the cell's input capacitance.  Sink required-arrival times
/// are zero, so maximizing root slack minimizes the worst sink delay.
/// Buffer placements use the same vocabulary as the length-based DP:
/// an arc buffer {v, child} decouples one branch at v, a driving buffer
/// {v, kNoNode} (only at nodes with >= 2 children) drives the joint
/// load; the source tile never buffers in series with the driver.

#include <functional>
#include <vector>

#include "route/buffers.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"
#include "timing/buffer_library.hpp"
#include "timing/delay.hpp"
#include "timing/tech.hpp"

namespace rabid::buffer {

/// Whether a tile can host (another) buffer.
using TileAllowFn = std::function<bool(tile::TileId)>;

struct TimingDrivenResult {
  route::BufferList buffers;
  /// Library cell per placement (types[i] realizes buffers[i]).
  std::vector<timing::BufferType> types;
  /// Predicted worst source-to-sink Elmore delay, ps.
  double delay_ps = 0.0;
};

/// Minimizes the worst sink Elmore delay of `tree` by optimal buffer
/// insertion from `lib` (non-inverting cells only) on tiles where
/// `allow` is true.  O(n^2 B^2) worst case; intended for the handful of
/// critical nets, not the full netlist.
TimingDrivenResult van_ginneken(const route::RouteTree& tree,
                                const tile::TileGraph& g,
                                const timing::BufferLibrary& lib,
                                const TileAllowFn& allow,
                                const timing::Technology& tech =
                                    timing::kTech180nm);

/// Inverter-aware variant: repeaters may also be the library's
/// inverting cells (Section I-B: a site realizes "a buffer, inverter
/// (with a range of power levels)...").  Candidate lists are tracked per
/// signal-polarity parity; every sink is guaranteed an even inversion
/// count, so the returned solution is logically equivalent to the
/// buffer-only one but can exploit the cheaper inverting stages in
/// pairs.  Never worse than van_ginneken() on the same library.
TimingDrivenResult van_ginneken_with_inverters(
    const route::RouteTree& tree, const tile::TileGraph& g,
    const timing::BufferLibrary& lib, const TileAllowFn& allow,
    const timing::Technology& tech = timing::kTech180nm);

}  // namespace rabid::buffer
