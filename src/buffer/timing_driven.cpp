#include "buffer/timing_driven.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "util/assert.hpp"

namespace rabid::buffer {

namespace {

using timing::BufferType;

/// A (capacitance, slack) candidate with provenance for the traceback.
///
/// `parity` bookkeeping (inverter support): a candidate's list index is
/// the number of signal inversions (mod 2) between this point and every
/// sink below it.  Sinks require an even total, so only parity-0 root
/// candidates are answers.  Non-inverting cells preserve parity;
/// inverters flip it; merges require both branches to agree.
struct Cand {
  double cap = 0.0;
  double q = 0.0;  ///< worst slack (RAT 0) at this point

  enum class Op {
    kLeaf,    ///< base candidate at a node (sink loads only)
    kWire,    ///< child candidate pushed through the parent arc
    kArcBuf,  ///< buffer/inverter at the parent driving this arc
    kCopy,    ///< merge stage 0 = first child list
    kMerge,   ///< combined with the next child list
    kSink,    ///< the node's own sink loads, as a merge operand
    kDrive,   ///< driving buffer/inverter at the node (joint load)
  };
  Op op = Op::kLeaf;
  std::int32_t a = -1;          ///< index into the op's source list
  std::int32_t b = -1;          ///< second index (kMerge)
  std::int32_t type = -1;       ///< library cell (kArcBuf/kDrive)
  std::int8_t src_parity = 0;   ///< parity of the source list
};

using List = std::vector<Cand>;
/// One candidate list per required-inversions parity.
using PList = std::array<List, 2>;

/// Keeps the non-dominated frontier: caps strictly increasing, slacks
/// strictly increasing.  ((c1,q1) dominates (c2,q2) iff c1<=c2, q1>=q2.)
List prune(List in) {
  std::stable_sort(in.begin(), in.end(), [](const Cand& x, const Cand& y) {
    if (x.cap != y.cap) return x.cap < y.cap;
    return x.q > y.q;
  });
  List out;
  for (const Cand& c : in) {
    if (!out.empty() && c.q <= out.back().q) continue;  // dominated
    if (!out.empty() && c.cap == out.back().cap) continue;
    out.push_back(c);
  }
  return out;
}

PList prune(PList in) {
  return {prune(std::move(in[0])), prune(std::move(in[1]))};
}

/// Everything computed at one node, kept for the traceback.
struct NodeLists {
  // Per child (tree order): the child's final lists pushed through the
  // arc, then with arc-repeater options appended.
  std::vector<PList> arc_wire;
  std::vector<PList> arc_final;
  // Fold of arc_final lists (+ the node's sink operand as a final stage).
  std::vector<PList> merge;
  bool merged_sinks = false;  ///< last merge stage folded the sink operand
  PList final;  ///< merge.back() plus drive options, pruned
};

class VgSolver {
 public:
  VgSolver(const route::RouteTree& tree, const tile::TileGraph& g,
           const timing::BufferLibrary& lib, bool use_inverters,
           const TileAllowFn& allow, const timing::Technology& tech)
      : tree_(tree), g_(g), allow_(allow), tech_(tech) {
    for (const BufferType& t : lib.types()) {
      if (t.inverting && !use_inverters) continue;
      cells_.push_back(t);
    }
    RABID_ASSERT_MSG(
        std::any_of(cells_.begin(), cells_.end(),
                    [](const BufferType& t) { return !t.inverting; }),
        "library has no non-inverting buffer");
    nodes_.resize(tree.node_count());
    for (const route::NodeId v : tree.postorder()) process(v);
  }

  TimingDrivenResult solve() {
    TimingDrivenResult result;
    // Only parity-0 root candidates deliver correct sink polarity.
    const List& root =
        nodes_[static_cast<std::size_t>(tree_.root())].final[0];
    RABID_ASSERT_MSG(!root.empty(), "no correct-polarity solution");
    std::int32_t best = 0;
    double best_delay = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < root.size(); ++i) {
      const double d = tech_.driver_res * root[i].cap - root[i].q;
      if (d < best_delay) {
        best_delay = d;
        best = static_cast<std::int32_t>(i);
      }
    }
    result.delay_ps = best_delay;
    trace_final(tree_.root(), 0, best, result);
    return result;
  }

 private:
  double arc_len(route::NodeId child) const {
    const auto a = g_.coord_of(tree_.node(child).tile);
    const auto b = g_.coord_of(tree_.node(tree_.node(child).parent).tile);
    return (a.y == b.y) ? g_.tile_width() : g_.tile_height();
  }

  /// Repeater options from `source` lists: one candidate per cell, fed
  /// by the best slack in the parity the cell maps onto `out_parity`.
  void add_repeater_options(const PList& source, Cand::Op op,
                            PList& out) const {
    for (std::size_t t = 0; t < cells_.size(); ++t) {
      const BufferType& cell = cells_[t];
      for (std::int8_t out_parity = 0; out_parity < 2; ++out_parity) {
        // The cell sits above the source point: signal passes the cell,
        // then the source's subtree.  Inversions below the cell's input
        // = source parity + (cell inverting ? 1 : 0).
        const auto src_parity = static_cast<std::int8_t>(
            cell.inverting ? (out_parity ^ 1) : out_parity);
        const List& src = source[static_cast<std::size_t>(src_parity)];
        double best_q = -std::numeric_limits<double>::infinity();
        std::int32_t best_a = -1;
        for (std::size_t i = 0; i < src.size(); ++i) {
          const double q = src[i].q - cell.intrinsic_ps -
                           cell.output_res * src[i].cap;
          if (q > best_q) {
            best_q = q;
            best_a = static_cast<std::int32_t>(i);
          }
        }
        if (best_a < 0) continue;
        Cand cand;
        cand.cap = cell.input_cap;
        cand.q = best_q;
        cand.op = op;
        cand.a = best_a;
        cand.type = static_cast<std::int32_t>(t);
        cand.src_parity = src_parity;
        out[static_cast<std::size_t>(out_parity)].push_back(cand);
      }
    }
  }

  void process(route::NodeId v) {
    NodeLists& n = nodes_[static_cast<std::size_t>(v)];
    const route::RouteNode& node = tree_.node(v);

    // Arc lists per child.
    for (const route::NodeId w : node.children) {
      const PList& below = nodes_[static_cast<std::size_t>(w)].final;
      const double r = tech_.wire_res(arc_len(w));
      const double c = tech_.wire_cap(arc_len(w));
      PList wired;
      for (std::int8_t p = 0; p < 2; ++p) {
        const List& src = below[static_cast<std::size_t>(p)];
        for (std::size_t i = 0; i < src.size(); ++i) {
          Cand cand;
          cand.cap = src[i].cap + c;
          cand.q = src[i].q - r * (src[i].cap + c / 2.0);
          cand.op = Cand::Op::kWire;
          cand.a = static_cast<std::int32_t>(i);
          cand.src_parity = p;
          wired[static_cast<std::size_t>(p)].push_back(cand);
        }
      }
      wired = prune(std::move(wired));
      PList with_buf = wired;
      if (allow_(node.tile)) {
        add_repeater_options(wired, Cand::Op::kArcBuf, with_buf);
      }
      n.arc_wire.push_back(std::move(wired));
      n.arc_final.push_back(prune(std::move(with_buf)));
    }

    // Merge children; the node's own sinks are one more operand.
    if (node.children.empty()) {
      Cand leaf;
      leaf.cap = tech_.sink_cap * node.sink_count;
      leaf.q = 0.0;
      leaf.op = Cand::Op::kLeaf;
      PList base;
      base[0].push_back(leaf);  // sinks demand even inversions below
      n.merge.push_back(std::move(base));
    } else {
      // Merge stage 0 mirrors arc_final[0]; kCopy indices are positions
      // in those (already pruned) lists.
      PList stage0 = n.arc_final.front();
      for (std::int8_t p = 0; p < 2; ++p) {
        List& lst = stage0[static_cast<std::size_t>(p)];
        for (std::size_t i = 0; i < lst.size(); ++i) {
          lst[i].op = Cand::Op::kCopy;
          lst[i].a = static_cast<std::int32_t>(i);
          lst[i].b = -1;
          lst[i].type = -1;
          lst[i].src_parity = p;
        }
      }
      n.merge.push_back(std::move(stage0));
      for (std::size_t s = 1; s < n.arc_final.size(); ++s) {
        n.merge.push_back(merge_lists(n.merge.back(), n.arc_final[s]));
      }
      if (node.sink_count > 0) {
        Cand sink;
        sink.cap = tech_.sink_cap * node.sink_count;
        sink.q = 0.0;
        sink.op = Cand::Op::kSink;
        PList operand;
        operand[0].push_back(sink);
        n.merge.push_back(merge_lists(n.merge.back(), operand));
        n.merged_sinks = true;
      }
    }

    // Driving-repeater options (>= 2 children, never at the root).
    n.final = n.merge.back();
    if (node.children.size() >= 2 && v != tree_.root() &&
        allow_(node.tile)) {
      add_repeater_options(n.merge.back(), Cand::Op::kDrive, n.final);
    }
    n.final = prune(std::move(n.final));
  }

  /// Parity-wise cross-product merge (c_a + c_b, min(q_a, q_b)): both
  /// operands must demand the same incoming polarity.
  static PList merge_lists(const PList& a, const PList& b) {
    PList out;
    for (std::int8_t p = 0; p < 2; ++p) {
      const List& la = a[static_cast<std::size_t>(p)];
      const List& lb = b[static_cast<std::size_t>(p)];
      List& lo = out[static_cast<std::size_t>(p)];
      lo.reserve(la.size() * lb.size());
      for (std::size_t i = 0; i < la.size(); ++i) {
        for (std::size_t j = 0; j < lb.size(); ++j) {
          Cand c;
          c.cap = la[i].cap + lb[j].cap;
          c.q = std::min(la[i].q, lb[j].q);
          c.op = Cand::Op::kMerge;
          c.a = static_cast<std::int32_t>(i);
          c.b = static_cast<std::int32_t>(j);
          c.src_parity = p;
          lo.push_back(c);
        }
      }
    }
    return prune(std::move(out));
  }

  // ---- traceback -------------------------------------------------------

  void trace_final(route::NodeId v, std::int8_t parity, std::int32_t idx,
                   TimingDrivenResult& out) const {
    const NodeLists& n = nodes_[static_cast<std::size_t>(v)];
    const Cand& c =
        n.final[static_cast<std::size_t>(parity)][static_cast<std::size_t>(idx)];
    if (c.op == Cand::Op::kDrive) {
      out.buffers.push_back({v, route::kNoNode});
      out.types.push_back(cells_[static_cast<std::size_t>(c.type)]);
      trace_merge(v, static_cast<std::int32_t>(n.merge.size()) - 1,
                  c.src_parity, c.a, out);
    } else {
      trace_merge_cand(v, static_cast<std::int32_t>(n.merge.size()) - 1, c,
                       out);
    }
  }

  void trace_merge(route::NodeId v, std::int32_t stage, std::int8_t parity,
                   std::int32_t idx, TimingDrivenResult& out) const {
    const NodeLists& n = nodes_[static_cast<std::size_t>(v)];
    trace_merge_cand(
        v, stage,
        n.merge[static_cast<std::size_t>(stage)]
               [static_cast<std::size_t>(parity)]
               [static_cast<std::size_t>(idx)],
        out);
  }

  void trace_merge_cand(route::NodeId v, std::int32_t stage, const Cand& c,
                        TimingDrivenResult& out) const {
    const NodeLists& n = nodes_[static_cast<std::size_t>(v)];
    switch (c.op) {
      case Cand::Op::kLeaf:
      case Cand::Op::kSink:
        return;
      case Cand::Op::kCopy:
        trace_arc(v, 0, c.src_parity, c.a, out);
        return;
      case Cand::Op::kMerge: {
        trace_merge(v, stage - 1, c.src_parity, c.a, out);
        const bool is_sink_stage =
            n.merged_sinks &&
            stage == static_cast<std::int32_t>(n.merge.size()) - 1;
        if (!is_sink_stage) {
          trace_arc(v, stage, c.src_parity, c.b, out);
        }
        return;
      }
      default:
        RABID_ASSERT_MSG(false, "unexpected op in merge traceback");
    }
  }

  void trace_arc(route::NodeId v, std::int32_t child_pos, std::int8_t parity,
                 std::int32_t idx, TimingDrivenResult& out) const {
    const NodeLists& n = nodes_[static_cast<std::size_t>(v)];
    const route::NodeId w =
        tree_.node(v).children[static_cast<std::size_t>(child_pos)];
    const Cand& c = n.arc_final[static_cast<std::size_t>(child_pos)]
                               [static_cast<std::size_t>(parity)]
                               [static_cast<std::size_t>(idx)];
    if (c.op == Cand::Op::kArcBuf) {
      out.buffers.push_back({v, w});
      out.types.push_back(cells_[static_cast<std::size_t>(c.type)]);
      const Cand& wired =
          n.arc_wire[static_cast<std::size_t>(child_pos)]
                    [static_cast<std::size_t>(c.src_parity)]
                    [static_cast<std::size_t>(c.a)];
      trace_final(w, wired.src_parity, wired.a, out);
    } else {
      RABID_ASSERT(c.op == Cand::Op::kWire);
      trace_final(w, c.src_parity, c.a, out);
    }
  }

  const route::RouteTree& tree_;
  const tile::TileGraph& g_;
  const TileAllowFn& allow_;
  const timing::Technology& tech_;
  std::vector<BufferType> cells_;
  std::vector<NodeLists> nodes_;
};

}  // namespace

TimingDrivenResult van_ginneken(const route::RouteTree& tree,
                                const tile::TileGraph& g,
                                const timing::BufferLibrary& lib,
                                const TileAllowFn& allow,
                                const timing::Technology& tech) {
  RABID_ASSERT_MSG(!tree.empty(), "cannot buffer an empty route");
  VgSolver solver(tree, g, lib, /*use_inverters=*/false, allow, tech);
  return solver.solve();
}

TimingDrivenResult van_ginneken_with_inverters(
    const route::RouteTree& tree, const tile::TileGraph& g,
    const timing::BufferLibrary& lib, const TileAllowFn& allow,
    const timing::Technology& tech) {
  RABID_ASSERT_MSG(!tree.empty(), "cannot buffer an empty route");
  VgSolver solver(tree, g, lib, /*use_inverters=*/true, allow, tech);
  return solver.solve();
}

}  // namespace rabid::buffer
