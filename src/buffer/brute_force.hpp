#pragma once

/// \file brute_force.hpp
/// Exhaustive reference implementation of length-based buffer insertion,
/// used only by tests to certify the DP's optimality on small trees.
///
/// Enumerates every subset of candidate buffer slots (a decoupling slot
/// per tree arc, a driving slot per multi-child node; never the root
/// tile), checks the total-driven-length rule for the driver and every
/// buffer, and returns the cheapest legal configuration.

#include <cstdint>

#include "buffer/insertion.hpp"

namespace rabid::buffer {

/// Exhaustive optimum. Practical only for trees with ~12 or fewer slots.
InsertionResult brute_force_insert(const route::RouteTree& tree,
                                   std::int32_t L, const TileCostFn& q);

/// True iff `buffers` on `tree` satisfies the rule: every gate (driver
/// included) drives at most L tile-units of wire.  Shared by tests to
/// validate DP outputs on large trees where enumeration is impossible.
bool placement_is_legal(const route::RouteTree& tree,
                        const route::BufferList& buffers, std::int32_t L);

/// Total q-cost of a buffer list.
double placement_cost(const route::RouteTree& tree,
                      const route::BufferList& buffers, const TileCostFn& q);

}  // namespace rabid::buffer
