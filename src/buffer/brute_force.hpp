#pragma once

/// \file brute_force.hpp
/// Exhaustive reference implementation of length-based buffer insertion,
/// used only by tests to certify the DP's optimality on small trees.
///
/// Enumerates every subset of candidate buffer slots (a decoupling slot
/// per tree arc, a driving slot per multi-child node; never the root
/// tile), checks the total-driven-length rule for the driver and every
/// buffer, and returns the cheapest legal configuration.

#include <cstdint>
#include <span>

#include "buffer/frontier.hpp"
#include "buffer/insertion.hpp"

namespace rabid::buffer {

/// Exhaustive optimum. Practical only for trees with ~12 or fewer slots.
InsertionResult brute_force_insert(const route::RouteTree& tree,
                                   std::int32_t L, const TileCostFn& q);

/// True iff `buffers` on `tree` satisfies the rule: every gate (driver
/// included) drives at most L tile-units of wire.  Shared by tests to
/// validate DP outputs on large trees where enumeration is impossible.
bool placement_is_legal(const route::RouteTree& tree,
                        const route::BufferList& buffers, std::int32_t L);

/// Total q-cost of a buffer list.
double placement_cost(const route::RouteTree& tree,
                      const route::BufferList& buffers, const TileCostFn& q);

/// Multi-type legality: buffer i (library type types[i]) may drive at
/// most lib.drive_limit(types[i], L) tile-units; the net driver always
/// obeys the plain L.  `types` parallels `buffers`; empty means all
/// type 0.  With a unit library this coincides with placement_is_legal.
bool placement_is_legal_lib(const route::RouteTree& tree,
                            const route::BufferList& buffers,
                            std::span<const std::int32_t> types,
                            std::int32_t L, const BufferLibrary& lib);

/// Total scaled site cost: sum of cost_scale_{types[i]} * q(tile_i).
double placement_cost_lib(const route::RouteTree& tree,
                          const route::BufferList& buffers,
                          std::span<const std::int32_t> types,
                          const TileCostFn& q, const BufferLibrary& lib);

/// Exhaustive multi-type optimum: every slot independently empty or one
/// of the b types, (b+1)^slots combinations.  Tiny trees only.
InsertionResult brute_force_insert_lib(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q,
                                       const BufferLibrary& lib);

/// The exhaustive root frontier: every placement whose *buffers* all
/// obey their type limits (the net driver left unconstrained) yields a
/// (root load, cost) state; states beyond the DP's load cap
/// max(L, lib.max_drive_limit(L)) are dead and dropped; the rest are
/// dominance-pruned.  The oracle battery compares this state-for-state
/// against the candidate DP's root frontier.
Frontier brute_force_frontier_lib(const route::RouteTree& tree,
                                  std::int32_t L, const TileCostFn& q,
                                  const BufferLibrary& lib);

}  // namespace rabid::buffer
