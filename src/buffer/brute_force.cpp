#include "buffer/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace rabid::buffer {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool placement_is_legal(const route::RouteTree& tree,
                        const route::BufferList& buffers, std::int32_t L) {
  const std::size_t n = tree.node_count();
  std::vector<bool> driving(n, false);
  std::vector<bool> decoupled(n, false);  // arc parent->node has a buffer
  for (const route::BufferPlacement& b : buffers) {
    // Decoupling at the source tile is fine; a buffer in series with the
    // net driver is not.
    if (b.node == tree.root() && b.child == route::kNoNode) return false;
    if (b.child == route::kNoNode) {
      driving[static_cast<std::size_t>(b.node)] = true;
    } else {
      if (tree.node(b.child).parent != b.node) return false;
      decoupled[static_cast<std::size_t>(b.child)] = true;
    }
  }

  // load[v] = tile-units of unbuffered wire hanging below point v
  // *after* v's driving buffer (i.e. what a gate placed at v would see).
  // Child-before-parent accumulation; each arc contributes 1 plus the
  // child's upward-visible load.
  std::vector<std::int32_t> load(n, 0);
  for (const route::NodeId v : tree.postorder()) {
    std::int32_t total = 0;
    for (const route::NodeId w : tree.node(v).children) {
      const std::int32_t arc_load =
          1 + load[static_cast<std::size_t>(w)];
      if (decoupled[static_cast<std::size_t>(w)]) {
        // The decoupling buffer at v must itself satisfy the rule...
        if (arc_load > L) return false;
      } else {
        total += arc_load;
      }
    }
    if (driving[static_cast<std::size_t>(v)]) {
      if (total > L) return false;  // the driving buffer's own stage
      total = 0;
    }
    load[static_cast<std::size_t>(v)] = total;
  }
  // ...and the net driver drives whatever is visible at the root.
  return load[static_cast<std::size_t>(tree.root())] <= L;
}

double placement_cost(const route::RouteTree& tree,
                      const route::BufferList& buffers, const TileCostFn& q) {
  double cost = 0.0;
  for (const route::BufferPlacement& b : buffers) {
    cost += q(tree.node(b.node).tile);
  }
  return cost;
}

namespace {

/// Candidate buffer slots: a decoupling slot per tree arc, a driving
/// slot per non-root multi-child node.
route::BufferList buffer_slots(const route::RouteTree& tree) {
  route::BufferList slots;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const auto v = static_cast<route::NodeId>(i);
    for (const route::NodeId w : tree.node(v).children) {
      slots.push_back({v, w});
    }
    if (v != tree.root() && tree.node(v).children.size() >= 2) {
      slots.push_back({v, route::kNoNode});
    }
  }
  return slots;
}

struct LoadCheck {
  bool gates_ok = false;        ///< every buffer within its type limit
  std::int32_t root_load = 0;   ///< unbuffered wire visible at the root
};

/// The postorder load accumulation shared by all legality flavors.
/// Structural violations (driving buffer at the root, decouple entry
/// whose child/parent don't match the tree) report gates_ok == false.
LoadCheck accumulate_loads(const route::RouteTree& tree,
                           const route::BufferList& buffers,
                           std::span<const std::int32_t> types,
                           std::int32_t L, const BufferLibrary& lib) {
  const std::size_t n = tree.node_count();
  std::vector<std::int32_t> drv_type(n, -1);
  std::vector<std::int32_t> dec_type(n, -1);  // arc parent->node
  LoadCheck bad;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const route::BufferPlacement& b = buffers[i];
    const std::int32_t t =
        types.empty() ? 0 : types[i];
    if (t < 0 || static_cast<std::size_t>(t) >= lib.size()) return bad;
    if (b.node == tree.root() && b.child == route::kNoNode) return bad;
    if (b.child == route::kNoNode) {
      drv_type[static_cast<std::size_t>(b.node)] = t;
    } else {
      if (tree.node(b.child).parent != b.node) return bad;
      dec_type[static_cast<std::size_t>(b.child)] = t;
    }
  }

  // load[v] = tile-units of unbuffered wire hanging below point v
  // *after* v's driving buffer (what a gate placed at v would see).
  std::vector<std::int32_t> load(n, 0);
  for (const route::NodeId v : tree.postorder()) {
    std::int32_t total = 0;
    for (const route::NodeId w : tree.node(v).children) {
      const auto wi = static_cast<std::size_t>(w);
      const std::int32_t arc_load = 1 + load[wi];
      if (dec_type[wi] >= 0) {
        if (arc_load > lib.drive_limit(static_cast<std::size_t>(dec_type[wi]),
                                       L)) {
          return bad;
        }
      } else {
        total += arc_load;
      }
    }
    const auto vi = static_cast<std::size_t>(v);
    if (drv_type[vi] >= 0) {
      if (total > lib.drive_limit(static_cast<std::size_t>(drv_type[vi]), L)) {
        return bad;
      }
      total = 0;
    }
    load[vi] = total;
  }
  return {true, load[static_cast<std::size_t>(tree.root())]};
}

}  // namespace

bool placement_is_legal_lib(const route::RouteTree& tree,
                            const route::BufferList& buffers,
                            std::span<const std::int32_t> types,
                            std::int32_t L, const BufferLibrary& lib) {
  RABID_ASSERT_MSG(types.empty() || types.size() == buffers.size(),
                   "types must parallel buffers");
  const LoadCheck check = accumulate_loads(tree, buffers, types, L, lib);
  return check.gates_ok && check.root_load <= L;
}

double placement_cost_lib(const route::RouteTree& tree,
                          const route::BufferList& buffers,
                          std::span<const std::int32_t> types,
                          const TileCostFn& q, const BufferLibrary& lib) {
  RABID_ASSERT_MSG(types.empty() || types.size() == buffers.size(),
                   "types must parallel buffers");
  double cost = 0.0;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const std::int32_t t = types.empty() ? 0 : types[i];
    cost += lib.type(static_cast<std::size_t>(t)).cost_scale *
            q(tree.node(buffers[i].node).tile);
  }
  return cost;
}

InsertionResult brute_force_insert(const route::RouteTree& tree,
                                   std::int32_t L, const TileCostFn& q) {
  // Candidate slots.
  const route::BufferList slots = buffer_slots(tree);
  RABID_ASSERT_MSG(slots.size() <= 20, "brute force is for tiny trees only");

  InsertionResult best;
  best.cost = kInf;
  best.effective_limit = L;
  const std::uint32_t count = 1U << slots.size();
  for (std::uint32_t mask = 0; mask < count; ++mask) {
    route::BufferList candidate;
    double cost = 0.0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if ((mask >> s) & 1U) {
        candidate.push_back(slots[s]);
        cost += q(tree.node(slots[s].node).tile);
      }
    }
    if (cost >= best.cost) continue;
    if (!placement_is_legal(tree, candidate, L)) continue;
    best.cost = cost;
    best.buffers = std::move(candidate);
    best.feasible = true;
  }
  return best;
}

namespace {

/// Enumerates every assignment of {empty, type 0, ..., type b-1} to the
/// slot list — a mixed-radix counter over (b+1)^slots combinations —
/// and feeds each placement to `visit(buffers, types, cost)`.
template <typename Visit>
void enumerate_assignments(const route::RouteTree& tree,
                           const route::BufferList& slots,
                           const TileCostFn& q, const BufferLibrary& lib,
                           const Visit& visit) {
  const std::size_t radix = lib.size() + 1;  // 0 == empty slot
  double combos = 1.0;
  for (std::size_t s = 0; s < slots.size(); ++s) combos *= double(radix);
  RABID_ASSERT_MSG(combos <= 8.0e6,
                   "multi-type brute force is for tiny trees only");

  std::vector<std::size_t> digits(slots.size(), 0);
  route::BufferList buffers;
  std::vector<std::int32_t> types;
  for (;;) {
    buffers.clear();
    types.clear();
    double cost = 0.0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (digits[s] == 0) continue;
      const auto t = static_cast<std::int32_t>(digits[s] - 1);
      buffers.push_back(slots[s]);
      types.push_back(t);
      cost += lib.type(static_cast<std::size_t>(t)).cost_scale *
              q(tree.node(slots[s].node).tile);
    }
    visit(buffers, types, cost);
    // Increment the counter; done once every digit has wrapped.
    std::size_t s = 0;
    while (s < slots.size() && ++digits[s] == radix) {
      digits[s] = 0;
      ++s;
    }
    if (s == slots.size()) break;
  }
}

}  // namespace

InsertionResult brute_force_insert_lib(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q,
                                       const BufferLibrary& lib) {
  InsertionResult best;
  best.cost = kInf;
  best.effective_limit = L;
  enumerate_assignments(
      tree, buffer_slots(tree), q, lib,
      [&](const route::BufferList& buffers,
          const std::vector<std::int32_t>& types, double cost) {
        if (cost >= best.cost) return;
        const LoadCheck check = accumulate_loads(tree, buffers, types, L, lib);
        if (!check.gates_ok || check.root_load > L) return;
        best.cost = cost;
        best.buffers = buffers;
        best.types = types;
        best.feasible = true;
      });
  return best;
}

Frontier brute_force_frontier_lib(const route::RouteTree& tree,
                                  std::int32_t L, const TileCostFn& q,
                                  const BufferLibrary& lib) {
  const std::int32_t jcap = std::max(L, lib.max_drive_limit(L));
  std::vector<Cand> states;
  enumerate_assignments(
      tree, buffer_slots(tree), q, lib,
      [&](const route::BufferList& buffers,
          const std::vector<std::int32_t>& types, double cost) {
        // The driver is unconstrained here: the frontier carries every
        // root load, and the answer is read off under budget L.
        const LoadCheck check = accumulate_loads(tree, buffers, types, L, lib);
        if (!check.gates_ok || check.root_load > jcap) return;
        states.push_back({check.root_load, cost});
      });
  return prune_frontier(states);
}

}  // namespace rabid::buffer
