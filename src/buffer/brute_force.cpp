#include "buffer/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace rabid::buffer {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool placement_is_legal(const route::RouteTree& tree,
                        const route::BufferList& buffers, std::int32_t L) {
  const std::size_t n = tree.node_count();
  std::vector<bool> driving(n, false);
  std::vector<bool> decoupled(n, false);  // arc parent->node has a buffer
  for (const route::BufferPlacement& b : buffers) {
    // Decoupling at the source tile is fine; a buffer in series with the
    // net driver is not.
    if (b.node == tree.root() && b.child == route::kNoNode) return false;
    if (b.child == route::kNoNode) {
      driving[static_cast<std::size_t>(b.node)] = true;
    } else {
      if (tree.node(b.child).parent != b.node) return false;
      decoupled[static_cast<std::size_t>(b.child)] = true;
    }
  }

  // load[v] = tile-units of unbuffered wire hanging below point v
  // *after* v's driving buffer (i.e. what a gate placed at v would see).
  // Child-before-parent accumulation; each arc contributes 1 plus the
  // child's upward-visible load.
  std::vector<std::int32_t> load(n, 0);
  for (const route::NodeId v : tree.postorder()) {
    std::int32_t total = 0;
    for (const route::NodeId w : tree.node(v).children) {
      const std::int32_t arc_load =
          1 + load[static_cast<std::size_t>(w)];
      if (decoupled[static_cast<std::size_t>(w)]) {
        // The decoupling buffer at v must itself satisfy the rule...
        if (arc_load > L) return false;
      } else {
        total += arc_load;
      }
    }
    if (driving[static_cast<std::size_t>(v)]) {
      if (total > L) return false;  // the driving buffer's own stage
      total = 0;
    }
    load[static_cast<std::size_t>(v)] = total;
  }
  // ...and the net driver drives whatever is visible at the root.
  return load[static_cast<std::size_t>(tree.root())] <= L;
}

double placement_cost(const route::RouteTree& tree,
                      const route::BufferList& buffers, const TileCostFn& q) {
  double cost = 0.0;
  for (const route::BufferPlacement& b : buffers) {
    cost += q(tree.node(b.node).tile);
  }
  return cost;
}

InsertionResult brute_force_insert(const route::RouteTree& tree,
                                   std::int32_t L, const TileCostFn& q) {
  // Candidate slots.
  route::BufferList slots;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const auto v = static_cast<route::NodeId>(i);
    for (const route::NodeId w : tree.node(v).children) {
      slots.push_back({v, w});
    }
    if (v != tree.root() && tree.node(v).children.size() >= 2) {
      slots.push_back({v, route::kNoNode});
    }
  }
  RABID_ASSERT_MSG(slots.size() <= 20, "brute force is for tiny trees only");

  InsertionResult best;
  best.cost = kInf;
  best.effective_limit = L;
  const std::uint32_t count = 1U << slots.size();
  for (std::uint32_t mask = 0; mask < count; ++mask) {
    route::BufferList candidate;
    double cost = 0.0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if ((mask >> s) & 1U) {
        candidate.push_back(slots[s]);
        cost += q(tree.node(slots[s].node).tile);
      }
    }
    if (cost >= best.cost) continue;
    if (!placement_is_legal(tree, candidate, L)) continue;
    best.cost = cost;
    best.buffers = std::move(candidate);
    best.feasible = true;
  }
  return best;
}

}  // namespace rabid::buffer
