#pragma once

/// \file insertion.hpp
/// Length-based buffer insertion on a routed tree (RABID Stage 3,
/// Section III-C) — the paper's central algorithmic contribution.
///
/// The net's length rule: no gate (the net driver or any inserted buffer)
/// may drive more than L tile-units of *total* interconnect (Fig. 3).
/// Cost of a buffer in tile v is q(v), eq. (2).  The dynamic program
/// keeps, per tree node v, a cost array C_v indexed by the total
/// unbuffered downstream wirelength j:
///
///   C_v[j] = cheapest buffering of the subtree under v whose unbuffered
///            wire hanging at v totals j tile-units, j in [0, L].
///
/// Transitions (all per the paper, Figs. 6/8/9):
///   advance   K_w[j] = C_w[j-1]                      (wire up one tile)
///   decouple  K_w[0] = q(v) + min_{j<=L-1} C_w[j]    (buffer at v drives
///                                                     the arc + branch)
///   join      C_v    = min-plus convolution of the K_w, truncated at L
///   drive     C_v[0] <- min(C_v[0], q(v) + min_j C_v[j])  (>=2 children)
///
/// At the source tile, *decoupling* buffers are allowed (a buffer right
/// at the driver output, isolating one branch: without this a root with
/// more branches than L is structurally unfixable), but no driving
/// buffer is ever placed in series with the driver itself; the answer is
/// min_j C_root[j], i.e. the driver may drive up to L tile-units.
/// Leaves are initialized all-zero exactly as in Fig. 6 Step 1, which
/// reproduces the Fig. 7 table cell-for-cell (the worked example's
/// source tile has no sites, disabling root decoupling there).
///
/// Complexity: O(n L) for a single-sink chain plus O(m L^2) of join work
/// over m sinks, matching Section III-C.
///
/// Reentrancy: the DP is a pure function of (tree, L, q) with no shared
/// state; q is evaluated only on the tree's own node tiles.  Concurrent
/// calls on distinct nets are safe whenever each q is itself safe to
/// call concurrently — core::Rabid's speculative parallel Stage 3
/// exploits both properties (the tile set bounds what can go stale).

#include <functional>
#include <span>
#include <vector>

#include "buffer/frontier.hpp"
#include "buffer/library.hpp"
#include "route/buffers.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::buffer {

/// Per-tile buffer cost q(v); return +infinity where no site is available.
using TileCostFn = std::function<double(tile::TileId)>;

struct InsertionResult {
  /// Total q-cost of the chosen buffers; +infinity if no legal solution.
  double cost = 0.0;
  bool feasible = false;
  route::BufferList buffers;
  /// Planning-library type index per buffer, parallel to `buffers`.
  /// Empty means "all unit type" (the single-type engine's output).
  std::vector<std::int32_t> types;
  /// Length limit actually used: == requested L normally; > L when the
  /// relaxed variant had to loosen the rule (net counts as a failure).
  std::int32_t effective_limit = 0;
};

/// Optimal length-based buffer insertion for `tree` under limit `L`.
/// Infeasible (e.g. a path of blocked tiles longer than L) yields
/// feasible == false and no buffers.
InsertionResult insert_buffers(const route::RouteTree& tree, std::int32_t L,
                               const TileCostFn& q);

/// Like insert_buffers, but on infeasibility retries with 2L, 4L, ...
/// until a solution exists (L >= total wirelength always succeeds with
/// zero buffers), providing the best-effort buffering the experiment
/// tables count as a length-constraint failure.
InsertionResult insert_buffers_relaxed(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q);

/// Multi-type buffer insertion: chooses one of `lib`'s b types per
/// buffer, minimizing total scaled site cost (type t at tile v costs
/// cost_scale_t * q(v); a type-t gate may drive up to drive_limit(t, L)
/// tile-units — the net driver itself always obeys the plain L).  Runs
/// the dominance-pruned candidate-list engine; `result.types[i]` is the
/// library index of `result.buffers[i]`.  For a unit library this is
/// value-equivalent to insert_buffers (the oracle battery pins both).
InsertionResult insert_buffers_lib(const route::RouteTree& tree,
                                   std::int32_t L, const TileCostFn& q,
                                   const BufferLibrary& lib);

/// insert_buffers_relaxed, multi-type.
InsertionResult insert_buffers_lib_relaxed(const route::RouteTree& tree,
                                           std::int32_t L,
                                           const TileCostFn& q,
                                           const BufferLibrary& lib);

/// The candidate engine's pruned root frontier (all (load, cost) states
/// with load <= max(L, lib.max_drive_limit(L))).  Exposed for the oracle
/// battery, which checks it state-for-state against exhaustive
/// enumeration (brute_force_frontier_lib).
std::vector<Cand> dp_root_frontier_lib(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q,
                                       const BufferLibrary& lib);

/// Dispatcher the flow calls: unit libraries take the dense SoA/SIMD
/// path (bit-for-bit the historical engine, empty `types`), anything
/// else takes the candidate-list path.
InsertionResult insert_buffers_planned(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q,
                                       const BufferLibrary& lib);
InsertionResult insert_buffers_planned_relaxed(const route::RouteTree& tree,
                                               std::int32_t L,
                                               const TileCostFn& q,
                                               const BufferLibrary& lib);

/// The forward DP for one node: cost array C_v (size L+1) given the
/// children's arrays (tree child order).  Leaves get the all-zero array.
/// `q_v` == +infinity forbids buffers at v; `allow_drive` is false at
/// the root (no buffer in series with the net driver).
/// Exposed for unit tests; insert_buffers composes it bottom-up.
std::vector<double> dp_node_array(
    std::span<const std::vector<double>> child_arrays, double q_v,
    std::int32_t L, bool allow_drive = true);

}  // namespace rabid::buffer
