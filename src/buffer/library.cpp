#include "buffer/library.hpp"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "timing/tech.hpp"
#include "util/assert.hpp"

namespace rabid::buffer {

namespace {

BufferTypeSpec make_spec(std::string name, double cost_scale,
                         double drive_scale) {
  BufferTypeSpec s;
  s.name = std::move(name);
  s.cost_scale = cost_scale;
  s.drive_scale = drive_scale;
  // Electrical payload: drive_scale maps onto the timing model's size
  // knob (output resistance down, input cap up), like timing::scaled.
  const timing::Technology& tech = timing::kTech180nm;
  s.electrical.size = drive_scale;
  s.electrical.input_cap = tech.buffer_cap * drive_scale;
  s.electrical.output_res = tech.buffer_res / drive_scale;
  s.electrical.intrinsic_ps = tech.buffer_intrinsic_ps;
  s.electrical.inverting = false;
  return s;
}

}  // namespace

BufferLibrary::BufferLibrary(std::vector<BufferTypeSpec> types)
    : types_(std::move(types)) {
  RABID_ASSERT_MSG(!types_.empty(), "buffer library must have >= 1 type");
  std::unordered_set<std::string_view> names;
  for (BufferTypeSpec& t : types_) {
    RABID_ASSERT_MSG(!t.name.empty(), "buffer type needs a name");
    RABID_ASSERT_MSG(names.insert(t.name).second,
                     "duplicate buffer type name");
    RABID_ASSERT_MSG(t.cost_scale >= 0.0, "cost_scale must be >= 0");
    RABID_ASSERT_MSG(t.drive_scale > 0.0, "drive_scale must be > 0");
    // The electrical name always mirrors the spec name; rebinding here
    // (and on copy/move) keeps the view pointing into this library.
    t.electrical.name = t.name;
  }
}

BufferLibrary BufferLibrary::single_unit() {
  return BufferLibrary({make_spec("dpbuf_x1", 1.0, 1.0)});
}

BufferLibrary BufferLibrary::paper2() {
  return BufferLibrary({
      make_spec("dpbuf_x1", 1.0, 1.0),
      make_spec("dpbuf_x2", 2.0, 2.0),
  });
}

BufferLibrary BufferLibrary::paper4() {
  return BufferLibrary({
      make_spec("dpbuf_x0p5", 0.6, 0.5),
      make_spec("dpbuf_x1", 1.0, 1.0),
      make_spec("dpbuf_x2", 2.0, 2.0),
      make_spec("dpbuf_x4", 4.0, 4.0),
  });
}

bool BufferLibrary::preset(std::string_view name, BufferLibrary* out) {
  if (name == "unit") {
    *out = single_unit();
    return true;
  }
  if (name == "paper2") {
    *out = paper2();
    return true;
  }
  if (name == "paper4") {
    *out = paper4();
    return true;
  }
  return false;
}

bool BufferLibrary::is_unit() const {
  return types_.size() == 1 && types_[0].cost_scale == 1.0 &&
         types_[0].drive_scale == 1.0;
}

std::int32_t BufferLibrary::drive_limit(std::size_t i, std::int32_t L) const {
  const double scaled = types_.at(i).drive_scale * static_cast<double>(L);
  const auto floor_scaled = static_cast<std::int32_t>(std::floor(scaled));
  return floor_scaled < 1 ? 1 : floor_scaled;
}

std::int32_t BufferLibrary::max_drive_limit(std::int32_t L) const {
  std::int32_t best = 1;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    best = std::max(best, drive_limit(i, L));
  }
  return best;
}

std::int32_t BufferLibrary::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

}  // namespace rabid::buffer
