#include "buffer/kernels.hpp"

#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RABID_KERNELS_X86 1
#include <immintrin.h>
#else
#define RABID_KERNELS_X86 0
#endif

namespace rabid::buffer::kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- scalar backend ---------------------------------------------------
// Plain reduction loops; -O3 autovectorizes the value passes (min is a
// legal reduction without -ffast-math; only the argmin scan is serial).

double range_min_scalar(const double* v, std::int32_t n) {
  double best = kInf;
  for (std::int32_t i = 0; i < n; ++i) {
    best = v[i] < best ? v[i] : best;
  }
  return best;
}

void min_plus_join_scalar(const double* a, const double* b, std::int32_t L,
                          double* out) {
  for (std::int32_t j = 0; j <= L; ++j) {
    double best = kInf;
    for (std::int32_t x = 0; x <= j; ++x) {
      const double v = a[x] + b[j - x];
      best = v < best ? v : best;
    }
    out[j] = best;
  }
}

#if RABID_KERNELS_X86

// --- AVX2 backend -----------------------------------------------------
// 4-wide doubles.  All reductions are pure mins over the same value
// sets the scalar loops see (each candidate is one rounding), so the
// results are bit-identical; see the header contract.

__attribute__((target("avx2"))) double range_min_avx2(const double* v,
                                                      std::int32_t n) {
  std::int32_t i = 0;
  __m256d acc = _mm256_set1_pd(kInf);
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_min_pd(acc, _mm256_loadu_pd(v + i));
  }
  __m128d lo = _mm256_castpd256_pd128(acc);
  __m128d hi = _mm256_extractf128_pd(acc, 1);
  lo = _mm_min_pd(lo, hi);
  lo = _mm_min_sd(lo, _mm_unpackhi_pd(lo, lo));
  double best = _mm_cvtsd_f64(lo);
  for (; i < n; ++i) {
    best = v[i] < best ? v[i] : best;
  }
  return best;
}

__attribute__((target("avx2"))) void min_plus_join_avx2(const double* a,
                                                        const double* b,
                                                        std::int32_t L,
                                                        double* out) {
  for (std::int32_t j = 0; j <= L; ++j) {
    // min over x of a[x] + b[j-x]: walk a forward 4 at a time against a
    // lane-reversed load of b ending at j-x.
    __m256d acc = _mm256_set1_pd(kInf);
    std::int32_t x = 0;
    for (; x + 4 <= j + 1; x += 4) {
      const __m256d va = _mm256_loadu_pd(a + x);
      // b[j-x], b[j-x-1], b[j-x-2], b[j-x-3] loaded ascending then
      // reversed so lane i holds b[j-(x+i)].
      __m256d vb = _mm256_loadu_pd(b + (j - x - 3));
      vb = _mm256_permute4x64_pd(vb, 0x1B);
      acc = _mm256_min_pd(acc, _mm256_add_pd(va, vb));
    }
    __m128d lo = _mm256_castpd256_pd128(acc);
    __m128d hi = _mm256_extractf128_pd(acc, 1);
    lo = _mm_min_pd(lo, hi);
    lo = _mm_min_sd(lo, _mm_unpackhi_pd(lo, lo));
    double best = _mm_cvtsd_f64(lo);
    for (; x <= j; ++x) {
      const double v = a[x] + b[j - x];
      best = v < best ? v : best;
    }
    out[j] = best;
  }
}

bool have_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // RABID_KERNELS_X86

using RangeMinFn = double (*)(const double*, std::int32_t);
using JoinFn = void (*)(const double*, const double*, std::int32_t, double*);

struct Dispatch {
  RangeMinFn range_min = range_min_scalar;
  JoinFn join = min_plus_join_scalar;
  std::string_view name = "scalar";

  Dispatch() {
#if RABID_KERNELS_X86
    if (have_avx2()) {
      range_min = range_min_avx2;
      join = min_plus_join_avx2;
      name = "avx2";
    }
#endif
  }
};

const Dispatch& dispatch() {
  static const Dispatch d;
  return d;
}

}  // namespace

std::string_view backend() { return dispatch().name; }

double range_min(const double* v, std::int32_t n) {
  return dispatch().range_min(v, n);
}

std::int32_t range_argmin_first(const double* v, std::int32_t n) {
  const double best = dispatch().range_min(v, n);
  for (std::int32_t i = 0; i < n; ++i) {
    if (v[i] == best) return i;
  }
  return 0;  // all +inf (or n == 0): the scalar strict-< loop keeps 0
}

void min_plus_join(const double* a, const double* b, std::int32_t L,
                   double* out) {
  dispatch().join(a, b, L, out);
}

}  // namespace rabid::buffer::kernels
