#include "buffer/insertion.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace rabid::buffer {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Array = std::vector<double>;

/// K_w: child array advanced one tile toward the parent, plus the
/// decoupling-buffer option at the parent (K[0]).
Array advance_and_decouple(const Array& child, double q_v, std::int32_t L) {
  Array k(static_cast<std::size_t>(L) + 1, kInf);
  for (std::int32_t j = 1; j <= L; ++j) {
    k[static_cast<std::size_t>(j)] = child[static_cast<std::size_t>(j) - 1];
  }
  // A buffer at the parent drives the 1-tile arc plus j units below the
  // child: legal when j + 1 <= L, i.e. j <= L-1.
  double best = kInf;
  for (std::int32_t j = 0; j <= L - 1; ++j) {
    best = std::min(best, child[static_cast<std::size_t>(j)]);
  }
  k[0] = q_v + best;
  return k;
}

/// Index of the first minimum of child[0..L-1] — the decoupling-buffer
/// traceback target. Mirrors advance_and_decouple's scan order.
std::int32_t decouple_argmin(const Array& child, std::int32_t L) {
  double best = kInf;
  std::int32_t arg = 0;
  for (std::int32_t j = 0; j <= L - 1; ++j) {
    if (child[static_cast<std::size_t>(j)] < best) {
      best = child[static_cast<std::size_t>(j)];
      arg = j;
    }
  }
  return arg;
}

/// Min-plus convolution truncated at L: unbuffered lengths of the two
/// branch groups add at the merge node.
Array join(const Array& a, const Array& b, std::int32_t L) {
  Array c(static_cast<std::size_t>(L) + 1, kInf);
  for (std::int32_t j = 0; j <= L; ++j) {
    double best = kInf;
    for (std::int32_t x = 0; x <= j; ++x) {
      const double v = a[static_cast<std::size_t>(x)] +
                       b[static_cast<std::size_t>(j - x)];
      if (v < best) best = v;
    }
    c[static_cast<std::size_t>(j)] = best;
  }
  return c;
}

/// Value/argmin of the driving-buffer option: a buffer at v drives the
/// whole joined load j (j <= L).
std::pair<double, std::int32_t> drive_option(const Array& joined, double q_v,
                                             std::int32_t L) {
  double best = kInf;
  std::int32_t arg = 0;
  for (std::int32_t j = 0; j <= L; ++j) {
    if (joined[static_cast<std::size_t>(j)] < best) {
      best = joined[static_cast<std::size_t>(j)];
      arg = j;
    }
  }
  return {q_v + best, arg};
}

/// Everything the traceback needs to re-derive one node's decisions.
/// Recomputed on demand (bitwise-identical to the forward pass since it
/// runs the same code on the same stored child arrays).
struct NodeTrace {
  std::vector<Array> k;  ///< per child
  std::vector<Array> acc;  ///< fold partials; acc[s] joins k[0..s]
  double drive_value = kInf;
  std::int32_t drive_arg = 0;
  bool has_drive = false;
};

NodeTrace trace_node(std::span<const Array> child_arrays, double q_v,
                     std::int32_t L, bool allow_drive) {
  NodeTrace t;
  for (const Array& c : child_arrays) {
    t.k.push_back(advance_and_decouple(c, q_v, L));
  }
  if (t.k.empty()) return t;
  t.acc.push_back(t.k.front());
  for (std::size_t s = 1; s < t.k.size(); ++s) {
    t.acc.push_back(join(t.acc.back(), t.k[s], L));
  }
  if (allow_drive && t.k.size() >= 2) {
    t.has_drive = true;
    const auto [val, arg] = drive_option(t.acc.back(), q_v, L);
    t.drive_value = val;
    t.drive_arg = arg;
  }
  return t;
}

}  // namespace

std::vector<double> dp_node_array(std::span<const Array> child_arrays,
                                  double q_v, std::int32_t L,
                                  bool allow_drive) {
  RABID_ASSERT_MSG(L >= 1, "length limit must be at least one tile");
  if (child_arrays.empty()) {
    // Fig. 6 Step 1: the sink/leaf array is all zeros.
    return Array(static_cast<std::size_t>(L) + 1, 0.0);
  }
  NodeTrace t = trace_node(child_arrays, q_v, L, allow_drive);
  Array c = std::move(t.acc.back());
  if (t.has_drive && t.drive_value < c[0]) c[0] = t.drive_value;
  return c;
}

namespace {

/// Bottom-up forward pass + top-down traceback over a route tree.
class TreeDp {
 public:
  TreeDp(const route::RouteTree& tree, std::int32_t L, const TileCostFn& q)
      : tree_(tree), L_(L) {
    const std::size_t n = tree.node_count();
    q_of_node_.resize(n);
    arrays_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<route::NodeId>(i);
      q_of_node_[i] = q(tree.node(v).tile);
    }
    for (const route::NodeId v : tree.postorder()) {
      // Decoupling buffers may sit in the source tile, but nothing ever
      // drives in series with the net driver itself.
      arrays_[static_cast<std::size_t>(v)] = dp_node_array(
          child_arrays(v), q_of_node_[static_cast<std::size_t>(v)], L_,
          /*allow_drive=*/v != tree.root());
    }
  }

  double best_cost() const {
    const Array& root = arrays_[static_cast<std::size_t>(tree_.root())];
    return *std::min_element(root.begin(), root.end());
  }

  route::BufferList traceback() const {
    route::BufferList out;
    const Array& root = arrays_[static_cast<std::size_t>(tree_.root())];
    std::int32_t j = 0;
    double best = kInf;
    for (std::int32_t i = 0; i <= L_; ++i) {
      if (root[static_cast<std::size_t>(i)] < best) {
        best = root[static_cast<std::size_t>(i)];
        j = i;
      }
    }
    RABID_ASSERT(std::isfinite(best));
    trace(tree_.root(), j, out);
    return out;
  }

 private:
  std::vector<Array> child_arrays(route::NodeId v) const {
    std::vector<Array> out;
    for (const route::NodeId w : tree_.node(v).children) {
      out.push_back(arrays_[static_cast<std::size_t>(w)]);
    }
    return out;
  }

  void trace(route::NodeId v, std::int32_t j, route::BufferList& out) const {
    const auto& children = tree_.node(v).children;
    if (children.empty()) return;  // leaf: nothing below
    const std::vector<Array> kids = child_arrays(v);
    const NodeTrace t =
        trace_node(kids, q_of_node_[static_cast<std::size_t>(v)], L_,
                   /*allow_drive=*/v != tree_.root());

    // Was C_v[0] realized by the driving-buffer option?
    if (j == 0 && t.has_drive &&
        t.drive_value < t.acc.back()[0]) {
      out.push_back({v, route::kNoNode});
      j = t.drive_arg;
    }

    // Unfold the convolution, last child first.
    for (std::size_t s = children.size(); s-- > 1;) {
      const Array& left = t.acc[s - 1];
      const Array& right = t.k[s];
      const double target = t.acc[s][static_cast<std::size_t>(j)];
      std::int32_t a = -1;
      for (std::int32_t x = 0; x <= j; ++x) {
        if (left[static_cast<std::size_t>(x)] +
                right[static_cast<std::size_t>(j - x)] ==
            target) {
          a = x;
          break;
        }
      }
      RABID_ASSERT_MSG(a >= 0, "join traceback lost the optimal split");
      resolve_child(v, children[s], kids[s], j - a, out);
      j = a;
    }
    resolve_child(v, children[0], kids[0], j, out);
  }

  /// Child w consumed K-index `b`: either a decoupling buffer at v (b==0)
  /// or a plain one-tile advance.
  void resolve_child(route::NodeId v, route::NodeId w, const Array& child_c,
                     std::int32_t b, route::BufferList& out) const {
    if (b == 0) {
      out.push_back({v, w});
      trace(w, decouple_argmin(child_c, L_), out);
    } else {
      trace(w, b - 1, out);
    }
  }

  const route::RouteTree& tree_;
  std::int32_t L_;
  std::vector<double> q_of_node_;
  std::vector<Array> arrays_;
};

}  // namespace

InsertionResult insert_buffers(const route::RouteTree& tree, std::int32_t L,
                               const TileCostFn& q) {
  RABID_ASSERT_MSG(!tree.empty(), "cannot buffer an empty route");
  InsertionResult result;
  result.effective_limit = L;
  const TreeDp dp(tree, L, q);
  result.cost = dp.best_cost();
  result.feasible = std::isfinite(result.cost);
  if (result.feasible) result.buffers = dp.traceback();
  return result;
}

InsertionResult insert_buffers_relaxed(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q) {
  InsertionResult result = insert_buffers(tree, L, q);
  std::int32_t limit = L;
  const auto wirelength =
      static_cast<std::int32_t>(tree.wirelength_tiles());
  while (!result.feasible) {
    RABID_ASSERT_MSG(limit <= 2 * std::max(wirelength, std::int32_t{1}),
                     "relaxation failed to converge");
    limit *= 2;
    result = insert_buffers(tree, limit, q);
    result.effective_limit = limit;
  }
  return result;
}

}  // namespace rabid::buffer
