#include "buffer/insertion.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "buffer/kernels.hpp"
#include "obs/counters.hpp"
#include "util/assert.hpp"

namespace rabid::buffer {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Array = std::vector<double>;

/// K_w: child array advanced one tile toward the parent, plus the
/// decoupling-buffer option at the parent (out[0]).  `out` has L+1 slots.
void advance_and_decouple(std::span<const double> child, double q_v,
                          std::int32_t L, std::span<double> out) {
  // Advance: out[j] = child[j-1] for j in [1, L].
  std::copy_n(child.data(), L, out.data() + 1);
  // A buffer at the parent drives the 1-tile arc plus j units below the
  // child: legal when j + 1 <= L, i.e. j <= L-1.
  out[0] = q_v + kernels::range_min(child.data(), L);
}

/// Index of the first minimum of child[0..L-1] — the decoupling-buffer
/// traceback target. Mirrors advance_and_decouple's scan order.
std::int32_t decouple_argmin(std::span<const double> child, std::int32_t L) {
  return kernels::range_argmin_first(child.data(), L);
}

/// Min-plus convolution truncated at L: unbuffered lengths of the two
/// branch groups add at the merge node.  `out` must not alias a or b.
void join(std::span<const double> a, std::span<const double> b,
          std::int32_t L, std::span<double> out) {
  kernels::min_plus_join(a.data(), b.data(), L, out.data());
}

/// Value/argmin of the driving-buffer option: a buffer at v drives the
/// whole joined load j (j <= L).
std::pair<double, std::int32_t> drive_option(std::span<const double> joined,
                                             double q_v, std::int32_t L) {
  const std::int32_t arg = kernels::range_argmin_first(joined.data(), L + 1);
  return {q_v + joined[static_cast<std::size_t>(arg)], arg};
}

}  // namespace

std::vector<double> dp_node_array(std::span<const Array> child_arrays,
                                  double q_v, std::int32_t L,
                                  bool allow_drive) {
  RABID_ASSERT_MSG(L >= 1, "length limit must be at least one tile");
  const auto stride = static_cast<std::size_t>(L) + 1;
  if (child_arrays.empty()) {
    // Fig. 6 Step 1: the sink/leaf array is all zeros.
    return Array(stride, 0.0);
  }
  // Fold the children through the same span kernels the tree DP uses;
  // two stride-wide scratch rows ping-pong as the join accumulator.
  Array k(stride, kInf);
  Array acc(stride, kInf);
  Array next(stride, kInf);
  advance_and_decouple(child_arrays[0], q_v, L, acc);
  for (std::size_t s = 1; s < child_arrays.size(); ++s) {
    advance_and_decouple(child_arrays[s], q_v, L, k);
    join(acc, k, L, next);
    std::swap(acc, next);
  }
  if (allow_drive && child_arrays.size() >= 2) {
    const double val = drive_option(acc, q_v, L).first;
    if (val < acc[0]) acc[0] = val;
  }
  return acc;
}

namespace {

/// Bottom-up forward pass + top-down traceback over a route tree.
///
/// All per-node state lives in one arena: flat double buffers with a
/// uniform stride of L+1 doubles per array.
///
///   c_    node x stride   C_v, drive-min applied
///   k_    node x stride   K_w, stored at the *child* w (root row unused)
///   acc_  (#children total) x stride   join prefixes; acc row s of node
///         v folds K of children 0..s and keeps the PRE-drive-min values
///         (the traceback compares drive_value against acc.back()[0])
///
/// The forward pass memoizes drive_value/drive_arg/has_drive per node, so
/// the traceback is pure table lookups — no re-running of the DP kernels.
class TreeDp {
 public:
  TreeDp(const route::RouteTree& tree, std::int32_t L, const TileCostFn& q)
      : tree_(tree), L_(L), stride_(static_cast<std::size_t>(L) + 1) {
    RABID_ASSERT_MSG(L >= 1, "length limit must be at least one tile");
    const std::size_t n = tree.node_count();
    q_of_node_.resize(n);
    acc_off_.assign(n, 0);
    std::size_t total_children = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<route::NodeId>(i);
      q_of_node_[i] = q(tree.node(v).tile);
      acc_off_[i] = total_children;
      total_children += tree.node(v).children.size();
    }
    c_.assign(n * stride_, 0.0);
    k_.assign(n * stride_, kInf);
    acc_.assign(total_children * stride_, kInf);
    drive_value_.assign(n, kInf);
    drive_arg_.assign(n, 0);
    has_drive_.assign(n, 0);

    for (const route::NodeId v : tree.postorder()) {
      forward_node(v);
    }
  }

  double best_cost() const {
    const std::span<const double> root = c_of(tree_.root());
    return *std::min_element(root.begin(), root.end());
  }

  /// Cost-array cells this DP filled (the c_/k_/acc_ arena).
  std::uint64_t cells_computed() const {
    return static_cast<std::uint64_t>(c_.size() + k_.size() + acc_.size());
  }

  /// Bytes held by the arena and the per-node side tables (the obs
  /// memory.dp_arena high-water mark — per-net, since the arena dies
  /// with the call).
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(c_.capacity() + k_.capacity() +
                                      acc_.capacity() +
                                      q_of_node_.capacity() +
                                      drive_value_.capacity()) *
               sizeof(double) +
           static_cast<std::uint64_t>(acc_off_.capacity()) *
               sizeof(std::size_t) +
           static_cast<std::uint64_t>(drive_arg_.capacity()) *
               sizeof(std::int32_t) +
           static_cast<std::uint64_t>(has_drive_.capacity());
  }

  /// Span-kernel invocations of the forward pass.
  std::uint64_t kernel_calls() const { return kernel_calls_; }

  /// C_v cells left at +inf — candidate states no buffering realizes.
  std::uint64_t cells_infeasible() const {
    return static_cast<std::uint64_t>(
        std::count(c_.begin(), c_.end(), kInf));
  }

  route::BufferList traceback() const {
    route::BufferList out;
    const std::span<const double> root = c_of(tree_.root());
    std::int32_t j = 0;
    double best = kInf;
    for (std::int32_t i = 0; i <= L_; ++i) {
      if (root[static_cast<std::size_t>(i)] < best) {
        best = root[static_cast<std::size_t>(i)];
        j = i;
      }
    }
    RABID_ASSERT(std::isfinite(best));
    trace(tree_.root(), j, out);
    return out;
  }

 private:
  std::span<double> row(std::vector<double>& a, std::size_t i) {
    return std::span<double>(a).subspan(i * stride_, stride_);
  }
  std::span<const double> row(const std::vector<double>& a,
                              std::size_t i) const {
    return std::span<const double>(a).subspan(i * stride_, stride_);
  }
  std::span<const double> c_of(route::NodeId v) const {
    return row(c_, static_cast<std::size_t>(v));
  }
  std::span<const double> k_of(route::NodeId w) const {
    return row(k_, static_cast<std::size_t>(w));
  }
  std::span<const double> acc_of(route::NodeId v, std::size_t s) const {
    return row(acc_, acc_off_[static_cast<std::size_t>(v)] + s);
  }

  void forward_node(route::NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    const auto& children = tree_.node(v).children;
    const std::span<double> c = row(c_, i);
    if (children.empty()) {
      // Fig. 6 Step 1: the sink/leaf array is all zeros (pre-filled).
      return;
    }
    const double q_v = q_of_node_[i];
    kernel_calls_ += 2 * children.size() - 1;  // advances + joins
    for (std::size_t s = 0; s < children.size(); ++s) {
      const auto w = static_cast<std::size_t>(children[s]);
      advance_and_decouple(row(c_, w), q_v, L_, row(k_, w));
    }
    std::span<double> prev = row(k_, static_cast<std::size_t>(children[0]));
    // acc[0] duplicates K of the first child so the traceback can index
    // the prefixes uniformly.
    std::copy(prev.begin(), prev.end(), row(acc_, acc_off_[i]).begin());
    for (std::size_t s = 1; s < children.size(); ++s) {
      const std::span<double> out = row(acc_, acc_off_[i] + s);
      join(row(acc_, acc_off_[i] + s - 1),
           row(k_, static_cast<std::size_t>(children[s])), L_, out);
      prev = out;
    }
    std::copy(prev.begin(), prev.end(), c.begin());
    // Decoupling buffers may sit in the source tile, but nothing ever
    // drives in series with the net driver itself.
    if (v != tree_.root() && children.size() >= 2) {
      has_drive_[i] = 1;
      ++kernel_calls_;
      const auto [val, arg] = drive_option(prev, q_v, L_);
      drive_value_[i] = val;
      drive_arg_[i] = arg;
      if (val < c[0]) c[0] = val;
    }
  }

  void trace(route::NodeId v, std::int32_t j, route::BufferList& out) const {
    const auto i = static_cast<std::size_t>(v);
    const auto& children = tree_.node(v).children;
    if (children.empty()) return;  // leaf: nothing below
    const std::size_t m = children.size();

    // Was C_v[0] realized by the driving-buffer option?
    if (j == 0 && has_drive_[i] != 0 &&
        drive_value_[i] < acc_of(v, m - 1)[0]) {
      out.push_back({v, route::kNoNode});
      j = drive_arg_[i];
    }

    // Unfold the convolution, last child first.
    for (std::size_t s = m; s-- > 1;) {
      const std::span<const double> left = acc_of(v, s - 1);
      const std::span<const double> right = k_of(children[s]);
      const double target = acc_of(v, s)[static_cast<std::size_t>(j)];
      std::int32_t a = -1;
      for (std::int32_t x = 0; x <= j; ++x) {
        if (left[static_cast<std::size_t>(x)] +
                right[static_cast<std::size_t>(j - x)] ==
            target) {
          a = x;
          break;
        }
      }
      RABID_ASSERT_MSG(a >= 0, "join traceback lost the optimal split");
      resolve_child(v, children[s], j - a, out);
      j = a;
    }
    resolve_child(v, children[0], j, out);
  }

  /// Child w consumed K-index `b`: either a decoupling buffer at v (b==0)
  /// or a plain one-tile advance.
  void resolve_child(route::NodeId v, route::NodeId w, std::int32_t b,
                     route::BufferList& out) const {
    if (b == 0) {
      out.push_back({v, w});
      trace(w, decouple_argmin(c_of(w), L_), out);
    } else {
      trace(w, b - 1, out);
    }
  }

  const route::RouteTree& tree_;
  std::int32_t L_;
  std::size_t stride_;
  std::vector<double> q_of_node_;
  std::vector<double> c_;
  std::vector<double> k_;
  std::vector<double> acc_;
  std::vector<std::size_t> acc_off_;
  std::vector<double> drive_value_;
  std::vector<std::int32_t> drive_arg_;
  std::vector<std::uint8_t> has_drive_;
  std::uint64_t kernel_calls_ = 0;
};

}  // namespace

InsertionResult insert_buffers(const route::RouteTree& tree, std::int32_t L,
                               const TileCostFn& q) {
  RABID_ASSERT_MSG(!tree.empty(), "cannot buffer an empty route");
  InsertionResult result;
  result.effective_limit = L;
  const TreeDp dp(tree, L, q);
  result.cost = dp.best_cost();
  result.feasible = std::isfinite(result.cost);
  if (result.feasible) result.buffers = dp.traceback();
  if (obs::counting()) {
    obs::count(obs::Counter::kDpNets);
    obs::count(obs::Counter::kDpCellsComputed, dp.cells_computed());
    obs::count(obs::Counter::kDpCellsInfeasible, dp.cells_infeasible());
    obs::count(obs::Counter::kDpKernels, dp.kernel_calls());
    obs::observe(obs::HistogramId::kDpCellsPerNet, dp.cells_computed());
    obs::gauge_max(obs::GaugeId::kDpArenaBytes, dp.memory_bytes());
  }
  return result;
}

InsertionResult insert_buffers_relaxed(const route::RouteTree& tree,
                                       std::int32_t L, const TileCostFn& q) {
  InsertionResult result = insert_buffers(tree, L, q);
  std::int32_t limit = L;
  const auto wirelength =
      static_cast<std::int32_t>(tree.wirelength_tiles());
  while (!result.feasible) {
    RABID_ASSERT_MSG(limit <= 2 * std::max(wirelength, std::int32_t{1}),
                     "relaxation failed to converge");
    limit *= 2;
    obs::count(obs::Counter::kDpLimitRelaxations);
    result = insert_buffers(tree, limit, q);
    result.effective_limit = limit;
  }
  return result;
}

}  // namespace rabid::buffer
