#include "buffer/single_sink.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace rabid::buffer {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// First argmin of the first L entries (matches the paper's min{C_v[j]}).
std::int32_t argmin(const std::vector<double>& c, std::int32_t L) {
  std::int32_t arg = 0;
  double best = kInf;
  for (std::int32_t j = 0; j < L; ++j) {
    if (c[static_cast<std::size_t>(j)] < best) {
      best = c[static_cast<std::size_t>(j)];
      arg = j;
    }
  }
  return arg;
}
}  // namespace

SingleSinkTable single_sink_insertion(std::span<const double> q,
                                      std::int32_t L) {
  RABID_ASSERT(L >= 1);
  const auto n = static_cast<std::int32_t>(q.size());
  SingleSinkTable table;
  table.cost.assign(static_cast<std::size_t>(n) + 1,
                    std::vector<double>(static_cast<std::size_t>(L), kInf));

  // Step 1: the sink's array is all zeros.
  std::fill(table.cost[static_cast<std::size_t>(n)].begin(),
            table.cost[static_cast<std::size_t>(n)].end(), 0.0);

  // Step 2: walk from the sink toward the source. Column i is par(column
  // i+1): a shift for "no buffer here" plus the buffered entry at j = 0.
  for (std::int32_t i = n - 1; i >= 0; --i) {
    const std::vector<double>& down = table.cost[static_cast<std::size_t>(i) + 1];
    std::vector<double>& here = table.cost[static_cast<std::size_t>(i)];
    for (std::int32_t j = 1; j < L; ++j) {
      here[static_cast<std::size_t>(j)] = down[static_cast<std::size_t>(j) - 1];
    }
    here[0] = q[static_cast<std::size_t>(i)] +
              *std::min_element(down.begin(), down.end());
  }

  // Step 3: the source drives column 0 (its child); any j works since
  // j + 1 <= L by construction of the array size.
  if (n == 0) {
    table.optimal = 0.0;
    return table;
  }
  std::int32_t j = argmin(table.cost[0], L);
  table.optimal = table.cost[0][static_cast<std::size_t>(j)];

  // Traceback: j == 0 at a column means "buffer here, then restart at the
  // cheapest downstream entry" — the dark lines of Fig. 7.
  if (std::isfinite(table.optimal)) {
    for (std::int32_t i = 0; i < n; ++i) {
      if (j == 0) {
        table.buffer_tiles.push_back(i);
        j = argmin(table.cost[static_cast<std::size_t>(i) + 1], L);
      } else {
        --j;
      }
    }
  }
  return table;
}

}  // namespace rabid::buffer
