#pragma once

/// \file route_tree.hpp
/// A net's global route as a tree over tile-graph tiles.
///
/// Every tree arc connects two *adjacent* tiles, so each arc corresponds
/// one-to-one to a tile-graph edge and consumes one unit of its capacity.
/// A tile appears at most once in a tree (global routes do not self-cross
/// at this abstraction level).  The root is the net's driver tile; any
/// node may carry one or more of the net's sinks.

#include <cstdint>
#include <vector>

#include "tile/tile_graph.hpp"

namespace rabid::route {

using NodeId = std::int32_t;
constexpr NodeId kNoNode = -1;

struct RouteNode {
  tile::TileId tile = tile::kNoTile;
  NodeId parent = kNoNode;
  std::vector<NodeId> children;
  std::int32_t sink_count = 0;  ///< number of net sinks attached here
};

class RouteTree {
 public:
  RouteTree() = default;
  /// Starts a tree whose root (the driver tile) is `source`.
  explicit RouteTree(tile::TileId source);

  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return nodes_.empty() ? kNoNode : 0; }
  std::size_t node_count() const { return nodes_.size(); }
  const RouteNode& node(NodeId n) const {
    return nodes_.at(static_cast<std::size_t>(n));
  }
  const std::vector<RouteNode>& nodes() const { return nodes_; }

  /// Node occupying a tile, or kNoNode.
  NodeId node_at(tile::TileId t) const;
  bool contains(tile::TileId t) const { return node_at(t) != kNoNode; }

  /// Adds a child of `parent` at tile `t` (must be adjacent in `g` when a
  /// graph is supplied to verify(); uniqueness of `t` is always enforced).
  NodeId add_child(NodeId parent, tile::TileId t);

  /// Marks one net sink as attached to node `n`.
  void add_sink(NodeId n) { nodes_.at(static_cast<std::size_t>(n)).sink_count++; }
  /// All nodes that carry at least one sink.
  std::vector<NodeId> sink_nodes() const;
  std::int32_t total_sinks() const;

  /// Number of tree arcs == wirelength in tile units.
  std::int64_t wirelength_tiles() const {
    return nodes_.empty() ? 0 : static_cast<std::int64_t>(nodes_.size()) - 1;
  }
  /// Physical wirelength in micrometers (sums per-arc tile pitches).
  double wirelength_um(const tile::TileGraph& g) const;

  /// Path length in tile units from the root to node `n`.
  std::int32_t depth(NodeId n) const;

  /// Adds (commit) or removes (uncommit) `width` units of wire usage on
  /// every tile-graph edge this tree crosses (width = the net's wire
  /// width class).
  void commit(tile::TileGraph& g, std::int32_t width = 1) const;
  void uncommit(tile::TileGraph& g, std::int32_t width = 1) const;

  /// Nodes in topological (parent-before-child) order. Root first.
  std::vector<NodeId> preorder() const;
  /// Nodes in reverse topological (child-before-parent) order.
  std::vector<NodeId> postorder() const;

  /// A maximal path of degree-2 internal nodes.  Ends are "anchors":
  /// the root, a sink-carrying node, or a branch (>= 2 children) node.
  /// `interior` excludes both ends; `head` is the end nearer the root.
  struct TwoPath {
    NodeId head = kNoNode;
    NodeId tail = kNoNode;
    std::vector<NodeId> interior;
  };
  /// Decomposes the tree into its two-paths (Section III-D).
  std::vector<TwoPath> two_paths() const;

  /// Checks structural invariants (single root, acyclic, tiles unique,
  /// arcs adjacent in `g`); aborts on violation.
  void verify(const tile::TileGraph& g) const;

  /// Bytes held by this tree's storage, per-node child lists included
  /// (obs memory.route_tree accounting: at 1M nets the trees are the
  /// flow's dominant live structure).
  std::uint64_t memory_bytes() const {
    std::uint64_t total =
        static_cast<std::uint64_t>(nodes_.capacity()) * sizeof(RouteNode) +
        static_cast<std::uint64_t>(by_tile_.capacity()) *
            sizeof(std::pair<tile::TileId, NodeId>);
    for (const RouteNode& n : nodes_) {
      total += static_cast<std::uint64_t>(n.children.capacity()) *
               sizeof(NodeId);
    }
    return total;
  }

 private:
  std::vector<RouteNode> nodes_;
  // tile -> node lookup. Dense maps would be per-tree O(tiles); a sorted
  // vector keeps trees cheap enough to copy during rip-up-and-reroute.
  std::vector<std::pair<tile::TileId, NodeId>> by_tile_;  // sorted by tile
};

}  // namespace rabid::route
