#include "route/rsmt.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace rabid::route {

namespace {

/// Manhattan MST length over a small point set; fills parent[] (rooted
/// at index 0 internally; re-rooting happens later).
double mst(const std::vector<geom::Point>& pts,
           std::vector<std::int32_t>& parent) {
  const auto n = static_cast<std::int32_t>(pts.size());
  parent.assign(static_cast<std::size_t>(n), -1);
  std::vector<bool> in(static_cast<std::size_t>(n), false);
  std::vector<double> key(static_cast<std::size_t>(n),
                          std::numeric_limits<double>::max());
  std::vector<std::int32_t> from(static_cast<std::size_t>(n), -1);
  key[0] = 0.0;
  double total = 0.0;
  for (std::int32_t added = 0; added < n; ++added) {
    std::int32_t u = -1;
    double best = std::numeric_limits<double>::max();
    for (std::int32_t i = 0; i < n; ++i) {
      if (!in[static_cast<std::size_t>(i)] &&
          key[static_cast<std::size_t>(i)] < best) {
        best = key[static_cast<std::size_t>(i)];
        u = i;
      }
    }
    in[static_cast<std::size_t>(u)] = true;
    total += best;
    parent[static_cast<std::size_t>(u)] = from[static_cast<std::size_t>(u)];
    for (std::int32_t v = 0; v < n; ++v) {
      if (in[static_cast<std::size_t>(v)]) continue;
      const double d = geom::manhattan(pts[static_cast<std::size_t>(u)],
                                       pts[static_cast<std::size_t>(v)]);
      if (d < key[static_cast<std::size_t>(v)]) {
        key[static_cast<std::size_t>(v)] = d;
        from[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return total;
}

}  // namespace

double hpwl(std::span<const geom::Point> terminals) {
  RABID_ASSERT(!terminals.empty());
  double lox = terminals[0].x, hix = terminals[0].x;
  double loy = terminals[0].y, hiy = terminals[0].y;
  for (const geom::Point& p : terminals) {
    lox = std::min(lox, p.x);
    hix = std::max(hix, p.x);
    loy = std::min(loy, p.y);
    hiy = std::max(hiy, p.y);
  }
  return (hix - lox) + (hiy - loy);
}

GeomTree rsmt_exact(std::span<const geom::Point> terminals,
                    std::int32_t source_index) {
  const auto n = static_cast<std::int32_t>(terminals.size());
  RABID_ASSERT(n >= 1 && n <= kMaxExactRsmtTerminals);
  RABID_ASSERT(source_index >= 0 && source_index < n);

  // Hanan grid candidates (excluding the terminals themselves).
  std::vector<double> xs, ys;
  for (const geom::Point& p : terminals) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  std::vector<geom::Point> hanan;
  for (const double x : xs) {
    for (const double y : ys) {
      const geom::Point p{x, y};
      bool is_terminal = false;
      for (const geom::Point& t : terminals) {
        if (t == p) is_terminal = true;
      }
      if (!is_terminal) hanan.push_back(p);
    }
  }

  // Enumerate Steiner-point subsets of size <= n-2 (Hanan's bound).
  const auto h = static_cast<std::int32_t>(hanan.size());
  const std::int32_t max_extra = std::max(0, n - 2);
  double best_len = std::numeric_limits<double>::max();
  std::vector<std::int32_t> best_parent;
  std::vector<geom::Point> best_pts;

  std::vector<std::int32_t> chosen;
  auto evaluate = [&]() {
    std::vector<geom::Point> pts(terminals.begin(), terminals.end());
    for (const std::int32_t c : chosen) {
      pts.push_back(hanan[static_cast<std::size_t>(c)]);
    }
    std::vector<std::int32_t> parent;
    const double len = mst(pts, parent);
    if (len < best_len) {
      best_len = len;
      best_parent = std::move(parent);
      best_pts = std::move(pts);
    }
  };
  // Subset recursion (h choose <= max_extra); tiny for n <= 5.
  auto recurse = [&](auto&& self, std::int32_t start) -> void {
    evaluate();
    if (static_cast<std::int32_t>(chosen.size()) == max_extra) return;
    for (std::int32_t c = start; c < h; ++c) {
      chosen.push_back(c);
      self(self, c + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
  // Note: a useless chosen Hanan point shows up as a degree-1 Steiner
  // leaf and only lengthens the MST, so such subsets never win — no
  // structural pruning of the best tree is needed.

  // Re-root the undirected best tree at the source.
  const auto m = static_cast<std::int32_t>(best_pts.size());
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(m));
  for (std::int32_t i = 0; i < m; ++i) {
    const std::int32_t p = best_parent[static_cast<std::size_t>(i)];
    if (p >= 0) {
      adj[static_cast<std::size_t>(i)].push_back(p);
      adj[static_cast<std::size_t>(p)].push_back(i);
    }
  }
  GeomTree out;
  out.points = best_pts;
  out.parent.assign(best_pts.size(), -2);
  out.root = source_index;
  out.terminal_count = n;
  std::queue<std::int32_t> frontier;
  frontier.push(source_index);
  out.parent[static_cast<std::size_t>(source_index)] = -1;
  while (!frontier.empty()) {
    const std::int32_t u = frontier.front();
    frontier.pop();
    for (const std::int32_t v : adj[static_cast<std::size_t>(u)]) {
      if (out.parent[static_cast<std::size_t>(v)] == -2) {
        out.parent[static_cast<std::size_t>(v)] = u;
        frontier.push(v);
      }
    }
  }
  for (std::int32_t& p : out.parent) {
    RABID_ASSERT_MSG(p != -2, "RSMT tree disconnected");
  }
  return out;
}

}  // namespace rabid::route
