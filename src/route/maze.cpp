#include "route/maze.hpp"

#include <algorithm>
#include <limits>

#include "obs/counters.hpp"
#include "util/assert.hpp"

namespace rabid::route {

double soft_wire_cost(const tile::TileGraph& g, tile::EdgeId e) {
  const std::int32_t w = g.wire_usage(e);
  const std::int32_t cap = g.wire_capacity(e);
  if (w < cap) {
    return static_cast<double>(w + 1) / static_cast<double>(cap - w);
  }
  return kOverflowPenalty * static_cast<double>(w - cap + 1);
}

EdgeCostCache::EdgeCostCache(const tile::TileGraph& g, EdgeCostFn base)
    : g_(g),
      base_(std::move(base)),
      values_(static_cast<std::size_t>(g.edge_count()), 0.0) {
  refresh_all();
}

void EdgeCostCache::refresh_all() {
  obs::count(obs::Counter::kEdgeCacheFullRefreshes);
  double lo = std::numeric_limits<double>::infinity();
  for (tile::EdgeId e = 0; e < g_.edge_count(); ++e) {
    const double c = base_(e);
    values_[static_cast<std::size_t>(e)] = c;
    lo = std::min(lo, c);
  }
  min_cost_ = std::isfinite(lo) ? lo : 0.0;
}

void EdgeCostCache::refresh_edge(tile::EdgeId e) {
  obs::count(obs::Counter::kEdgeCacheInvalidations);
  const double c = base_(e);
  values_[static_cast<std::size_t>(e)] = c;
  // Only ever lower the bound between full refreshes: raising it on the
  // strength of one edge could overestimate some other (stale-cheaper)
  // edge and break A* admissibility.
  if (c < min_cost_) min_cost_ = c;
}

void EdgeCostCache::on_capacity_change(tile::EdgeId e) {
  obs::count(obs::Counter::kEdgeCacheCapacityChanges);
  const double c = base_(e);
  values_[static_cast<std::size_t>(e)] = c;
  // Same conservative discipline as refresh_edge(): the bound may only
  // move down between full refreshes.  A capacity *increase* is the
  // dangerous direction — it lowers the true cost, so skipping this
  // update would leave min_cost() above the true minimum and break A*
  // admissibility (a capacity decrease only raises the cost, where a
  // stale-low bound merely weakens the heuristic).
  if (c < min_cost_) min_cost_ = c;
}

void EdgeCostCache::refresh_tree(const RouteTree& tree) {
  for (const RouteNode& n : tree.nodes()) {
    if (n.parent == kNoNode) continue;
    refresh_edge(g_.edge_between(n.tile, tree.node(n.parent).tile));
  }
}

void EdgeCostCache::refresh_tree_sharded(const RouteTree& tree,
                                         double& floor) {
  obs::count(obs::Counter::kEdgeCacheInvalidations, tree.node_count() - 1);
  for (const RouteNode& n : tree.nodes()) {
    if (n.parent == kNoNode) continue;
    const tile::EdgeId e = g_.edge_between(n.tile, tree.node(n.parent).tile);
    const double c = base_(e);
    values_[static_cast<std::size_t>(e)] = c;
    if (c < floor) floor = c;
  }
}

double EdgeCostCache::min_over(std::span<const tile::EdgeId> edges) const {
  double lo = std::numeric_limits<double>::infinity();
  for (const tile::EdgeId e : edges) {
    lo = std::min(lo, values_[static_cast<std::size_t>(e)]);
  }
  return std::isfinite(lo) ? lo : 0.0;
}

MazeRouter::MazeRouter(const tile::TileGraph& g)
    : g_(g),
      labels_(static_cast<std::size_t>(g.tile_count()),
              Label{0.0, 0.0, tile::kNoTile, 0, 0, 0}) {
  // Pre-size the wavefront scratch from the graph so the hot loops never
  // reallocate mid-search (kHeapRegrows counts any push that still
  // does).  A Dijkstra/A* wavefront pushes once per label improvement;
  // one slot per tile covers it in all but pathological cost fields.
  heap_.reserve(static_cast<std::size_t>(g.tile_count()));
  path_.reserve(static_cast<std::size_t>(g.nx() + g.ny()));
}

void MazeRouter::confine(tile::TileSpan span) {
  const auto paint = [&](const tile::TileSpan& s, std::uint8_t v) {
    for (std::int32_t y = s.y0; y <= s.y1; ++y) {
      for (std::int32_t x = s.x0; x <= s.x1; ++x) {
        in_region_[static_cast<std::size_t>(g_.id_of({x, y}))] = v;
      }
    }
  };
  if (in_region_.empty()) {
    in_region_.assign(static_cast<std::size_t>(g_.tile_count()), 0);
  } else {
    // confined_span_ is the last painted span even across unconfine();
    // clearing just it (not the chip) keeps per-net clips O(clip).
    paint(confined_span_, 0);
  }
  confined_ = true;
  confined_span_ = span;
  paint(span, 1);
}

std::uint64_t MazeRouter::memory_bytes() const {
  return static_cast<std::uint64_t>(labels_.capacity()) * sizeof(Label) +
         static_cast<std::uint64_t>(heap_.capacity()) * sizeof(HeapEntry) +
         static_cast<std::uint64_t>(in_region_.capacity()) +
         static_cast<std::uint64_t>(remaining_.capacity()) *
             sizeof(tile::TileId) +
         static_cast<std::uint64_t>(path_cost_.capacity()) * sizeof(double) +
         static_cast<std::uint64_t>(path_.capacity()) * sizeof(tile::TileId);
}

namespace {

/// Cost accessors the templated search cores specialize over: a flat
/// per-edge array (one load) or an arbitrary callback.
struct SpanCost {
  std::span<const double> v;
  double operator()(tile::EdgeId e) const {
    return v[static_cast<std::size_t>(e)];
  }
};
struct FnCost {
  const EdgeCostFn& fn;
  double operator()(tile::EdgeId e) const { return fn(e); }
};

}  // namespace

template <typename CostT>
RouteTree MazeRouter::grow_impl(tile::TileId source_tile,
                                std::span<const tile::TileId> sink_tiles,
                                double alpha, const CostT& cost,
                                double astar_floor) {
  RouteTree tree(source_tile);

  // Unconnected sink tiles (deduplicated); multiplicity handled at the end.
  remaining_.assign(sink_tiles.begin(), sink_tiles.end());
  std::sort(remaining_.begin(), remaining_.end());
  remaining_.erase(std::unique(remaining_.begin(), remaining_.end()),
                   remaining_.end());
  std::erase(remaining_, source_tile);

  ++target_epoch_;
  for (const tile::TileId t : remaining_)
    labels_[static_cast<std::size_t>(t)].target_stamp = target_epoch_;

  // Congestion-cost of the tree path from the source to each node, the
  // "path length" that alpha weighs in the PD objective.
  path_cost_.assign(1, 0.0);

  // Wavefront work, accumulated in registers and flushed to the
  // observability registry once per call (the inner loop stays clean).
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t stale_pops = 0;
  std::uint64_t pruned = 0;

  const bool use_h = astar_floor > 0.0;
  while (!remaining_.empty()) {
    begin_pass();
    heap_.clear();
    if (use_h) {
      target_coords_.clear();
      for (const tile::TileId t : remaining_)
        target_coords_.push_back(g_.coord_of(t));
    }
    // Admissible remaining-cost bound, memoized per tile per pass.
    const auto h_of = [&](tile::TileId t) -> double {
      if (!use_h) return 0.0;
      Label& l = labels_[static_cast<std::size_t>(t)];
      if (l.h_stamp == epoch_) return l.h;
      const geom::TileCoord c = g_.coord_of(t);
      std::int32_t best = std::numeric_limits<std::int32_t>::max();
      for (const geom::TileCoord& tc : target_coords_)
        best = std::min(best, geom::manhattan(c, tc));
      const double v = astar_floor * static_cast<double>(best);
      l.h = v;
      l.h_stamp = epoch_;
      return v;
    };

    // Seed the wavefront with every tree tile at alpha-weighted path cost.
    for (std::size_t i = 0; i < tree.node_count(); ++i) {
      const tile::TileId t = tree.node(static_cast<NodeId>(i)).tile;
      const double d = alpha * path_cost_[i];
      touch(t, d, tile::kNoTile);
      heap_push({d + h_of(t), d, t});
      ++pushes;
    }
    tile::TileId reached = tile::kNoTile;
    while (!heap_.empty()) {
      const HeapEntry top = heap_pop();
      ++pops;
      if (top.dist > labels_[static_cast<std::size_t>(top.tile)].dist) {
        ++stale_pops;
        continue;
      }
      if (is_target(top.tile)) {
        reached = top.tile;
        break;
      }
      const tile::TileGraph::Adjacency* adj = g_.adjacency(top.tile);
      const int n = g_.adj_count(top.tile);
      for (int k = 0; k < n; ++k) {
        const tile::TileId nbr = adj[k].tile;
        // Confinement check before the cost load: a confined search
        // must not even read edges leaving the region (their cache
        // entries may be owned by a concurrent shard).
        if (confined_ && in_region_[static_cast<std::size_t>(nbr)] == 0) {
          continue;
        }
        const double nd = top.dist + cost(adj[k].edge);
        Label& nl = labels_[static_cast<std::size_t>(nbr)];
        if (nl.stamp != epoch_ || nd < nl.dist) {
          nl.dist = nd;
          nl.prev = top.tile;
          nl.stamp = epoch_;
          heap_push({nd + h_of(nbr), nd, nbr});
          ++pushes;
        } else {
          ++pruned;
        }
      }
    }
    RABID_ASSERT_MSG(reached != tile::kNoTile,
                     "wavefront could not reach a sink tile");

    // Trace back to the tree, collect the new path (tree-side first).
    path_.clear();
    for (tile::TileId t = reached; t != tile::kNoTile;
         t = labels_[static_cast<std::size_t>(t)].prev) {
      path_.push_back(t);
      if (tree.contains(t) && t != reached) break;
    }
    std::reverse(path_.begin(), path_.end());
    RABID_ASSERT(tree.contains(path_.front()));

    NodeId anchor = tree.node_at(path_.front());
    double pc = path_cost_[static_cast<std::size_t>(anchor)];
    for (std::size_t i = 1; i < path_.size(); ++i) {
      const tile::EdgeId e = g_.edge_between(path_[i - 1], path_[i]);
      pc += cost(e);
      const NodeId existing = tree.node_at(path_[i]);
      if (existing != kNoNode) {
        anchor = existing;
        pc = path_cost_[static_cast<std::size_t>(existing)];
        continue;
      }
      anchor = tree.add_child(anchor, path_[i]);
      RABID_ASSERT(static_cast<std::size_t>(anchor) == path_cost_.size());
      path_cost_.push_back(pc);
    }

    // Newly covered targets (the reached one, plus any the path crossed).
    std::erase_if(remaining_, [&](tile::TileId t) {
      if (tree.contains(t)) {
        labels_[static_cast<std::size_t>(t)].target_stamp = 0;
        return true;
      }
      return false;
    });
  }

  // Attach sink multiplicity.
  for (const tile::TileId t : sink_tiles) {
    const NodeId n = tree.node_at(t);
    RABID_ASSERT(n != kNoNode);
    tree.add_sink(n);
  }

  if (obs::counting()) {
    obs::count(obs::Counter::kMazeRoutes);
    obs::count(obs::Counter::kMazeHeapPushes, pushes);
    obs::count(obs::Counter::kMazeHeapPops, pops);
    obs::count(obs::Counter::kMazeStalePops, stale_pops);
    obs::count(obs::Counter::kMazePrunedTouches, pruned);
    obs::count(obs::Counter::kHeapRegrows, heap_.take_regrows());
    obs::observe(obs::HistogramId::kMazePopsPerRoute, pops);
  }
  return tree;
}

RouteTree MazeRouter::grow(tile::TileId source_tile,
                           std::span<const tile::TileId> sink_tiles,
                           double alpha, std::span<const double> cost,
                           double astar_floor) {
  return grow_impl(source_tile, sink_tiles, alpha, SpanCost{cost},
                   astar_floor);
}

RouteTree MazeRouter::grow(tile::TileId source_tile,
                           std::span<const tile::TileId> sink_tiles,
                           double alpha, const EdgeCostFn& cost,
                           double astar_floor) {
  return grow_impl(source_tile, sink_tiles, alpha, FnCost{cost}, astar_floor);
}

RouteTree MazeRouter::route_net(const netlist::Net& net, double alpha,
                                std::span<const double> cost,
                                double astar_floor) {
  std::vector<tile::TileId> sinks;
  sinks.reserve(net.sinks.size());
  for (const netlist::Pin& p : net.sinks) {
    sinks.push_back(g_.tile_at(p.location));
  }
  return grow(g_.tile_at(net.source.location), sinks, alpha, cost,
              astar_floor);
}

RouteTree MazeRouter::route_net(const netlist::Net& net, double alpha,
                                const EdgeCostFn& cost, double astar_floor) {
  std::vector<tile::TileId> sinks;
  sinks.reserve(net.sinks.size());
  for (const netlist::Pin& p : net.sinks) {
    sinks.push_back(g_.tile_at(p.location));
  }
  return grow(g_.tile_at(net.source.location), sinks, alpha, cost,
              astar_floor);
}

template <typename CostT>
std::vector<tile::TileId> MazeRouter::shortest_path_impl(tile::TileId from,
                                                         tile::TileId to,
                                                         const CostT& cost,
                                                         double astar_floor) {
  begin_pass();
  heap_.clear();
  const geom::TileCoord goal = g_.coord_of(to);
  const auto h_of = [&](tile::TileId t) -> double {
    if (astar_floor <= 0.0) return 0.0;
    return astar_floor *
           static_cast<double>(geom::manhattan(g_.coord_of(t), goal));
  };
  touch(from, 0.0, tile::kNoTile);
  heap_push({h_of(from), 0.0, from});
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    if (top.dist > labels_[static_cast<std::size_t>(top.tile)].dist) continue;
    if (top.tile == to) break;
    const tile::TileGraph::Adjacency* adj = g_.adjacency(top.tile);
    const int n = g_.adj_count(top.tile);
    for (int k = 0; k < n; ++k) {
      const tile::TileId nbr = adj[k].tile;
      if (confined_ && in_region_[static_cast<std::size_t>(nbr)] == 0) {
        continue;
      }
      const double nd = top.dist + cost(adj[k].edge);
      Label& nl = labels_[static_cast<std::size_t>(nbr)];
      if (nl.stamp != epoch_ || nd < nl.dist) {
        nl.dist = nd;
        nl.prev = top.tile;
        nl.stamp = epoch_;
        heap_push({nd + h_of(nbr), nd, nbr});
      }
    }
  }
  RABID_ASSERT_MSG(seen(to), "no path between tiles");
  std::vector<tile::TileId> path;
  for (tile::TileId t = to; t != tile::kNoTile;
       t = labels_[static_cast<std::size_t>(t)].prev) {
    path.push_back(t);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<tile::TileId> MazeRouter::shortest_path(
    tile::TileId from, tile::TileId to, std::span<const double> cost,
    double astar_floor) {
  return shortest_path_impl(from, to, SpanCost{cost}, astar_floor);
}

std::vector<tile::TileId> MazeRouter::shortest_path(tile::TileId from,
                                                    tile::TileId to,
                                                    const EdgeCostFn& cost,
                                                    double astar_floor) {
  return shortest_path_impl(from, to, FnCost{cost}, astar_floor);
}

}  // namespace rabid::route
