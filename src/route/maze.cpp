#include "route/maze.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace rabid::route {

double soft_wire_cost(const tile::TileGraph& g, tile::EdgeId e) {
  const std::int32_t w = g.wire_usage(e);
  const std::int32_t cap = g.wire_capacity(e);
  if (w < cap) {
    return static_cast<double>(w + 1) / static_cast<double>(cap - w);
  }
  return kOverflowPenalty * static_cast<double>(w - cap + 1);
}

MazeRouter::MazeRouter(const tile::TileGraph& g)
    : g_(g),
      dist_(static_cast<std::size_t>(g.tile_count()), 0.0),
      prev_(static_cast<std::size_t>(g.tile_count()), tile::kNoTile),
      stamp_(static_cast<std::size_t>(g.tile_count()), 0) {}

namespace {

struct HeapEntry {
  double dist;
  tile::TileId tile;
  // Tie-break on tile id so expansion order (and thus routes) is fully
  // deterministic regardless of heap internals.
  bool operator>(const HeapEntry& o) const {
    if (dist != o.dist) return dist > o.dist;
    return tile > o.tile;
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

RouteTree MazeRouter::grow(tile::TileId source_tile,
                           std::span<const tile::TileId> sink_tiles,
                           double alpha, const EdgeCostFn& cost) {
  RouteTree tree(source_tile);

  // Unconnected sink tiles (deduplicated); multiplicity handled at the end.
  std::vector<tile::TileId> remaining(sink_tiles.begin(), sink_tiles.end());
  std::sort(remaining.begin(), remaining.end());
  remaining.erase(std::unique(remaining.begin(), remaining.end()),
                  remaining.end());
  std::erase(remaining, source_tile);

  // Congestion-cost of the tree path from the source to each node, the
  // "path length" that alpha weighs in the PD objective.
  std::vector<double> path_cost{0.0};

  std::vector<bool> is_target(static_cast<std::size_t>(g_.tile_count()),
                              false);
  for (const tile::TileId t : remaining)
    is_target[static_cast<std::size_t>(t)] = true;

  while (!remaining.empty()) {
    begin_pass();
    MinHeap heap;
    // Seed the wavefront with every tree tile at alpha-weighted path cost.
    for (std::size_t i = 0; i < tree.node_count(); ++i) {
      const tile::TileId t = tree.node(static_cast<NodeId>(i)).tile;
      touch(t, alpha * path_cost[i], tile::kNoTile);
      heap.push({alpha * path_cost[i], t});
    }
    tile::TileId reached = tile::kNoTile;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.dist > dist_[static_cast<std::size_t>(top.tile)]) continue;
      if (is_target[static_cast<std::size_t>(top.tile)]) {
        reached = top.tile;
        break;
      }
      tile::TileId nbr[4];
      const int n = g_.neighbors(top.tile, nbr);
      for (int k = 0; k < n; ++k) {
        const tile::EdgeId e = g_.edge_between(top.tile, nbr[k]);
        const double nd = top.dist + cost(e);
        if (!seen(nbr[k]) || nd < dist_[static_cast<std::size_t>(nbr[k])]) {
          touch(nbr[k], nd, top.tile);
          heap.push({nd, nbr[k]});
        }
      }
    }
    RABID_ASSERT_MSG(reached != tile::kNoTile,
                     "wavefront could not reach a sink tile");

    // Trace back to the tree, collect the new path (tree-side first).
    std::vector<tile::TileId> path;
    for (tile::TileId t = reached; t != tile::kNoTile;
         t = prev_[static_cast<std::size_t>(t)]) {
      path.push_back(t);
      if (tree.contains(t) && t != reached) break;
    }
    std::reverse(path.begin(), path.end());
    RABID_ASSERT(tree.contains(path.front()));

    NodeId anchor = tree.node_at(path.front());
    double pc = path_cost[static_cast<std::size_t>(anchor)];
    for (std::size_t i = 1; i < path.size(); ++i) {
      const tile::EdgeId e = g_.edge_between(path[i - 1], path[i]);
      pc += cost(e);
      const NodeId existing = tree.node_at(path[i]);
      if (existing != kNoNode) {
        anchor = existing;
        pc = path_cost[static_cast<std::size_t>(existing)];
        continue;
      }
      anchor = tree.add_child(anchor, path[i]);
      RABID_ASSERT(static_cast<std::size_t>(anchor) == path_cost.size());
      path_cost.push_back(pc);
    }

    // Newly covered targets (the reached one, plus any the path crossed).
    std::erase_if(remaining, [&](tile::TileId t) {
      if (tree.contains(t)) {
        is_target[static_cast<std::size_t>(t)] = false;
        return true;
      }
      return false;
    });
  }

  // Attach sink multiplicity.
  for (const tile::TileId t : sink_tiles) {
    const NodeId n = tree.node_at(t);
    RABID_ASSERT(n != kNoNode);
    tree.add_sink(n);
  }
  return tree;
}

RouteTree MazeRouter::route_net(const netlist::Net& net, double alpha,
                                const EdgeCostFn& cost) {
  std::vector<tile::TileId> sinks;
  sinks.reserve(net.sinks.size());
  for (const netlist::Pin& p : net.sinks) sinks.push_back(g_.tile_at(p.location));
  return grow(g_.tile_at(net.source.location), sinks, alpha, cost);
}

std::vector<tile::TileId> MazeRouter::shortest_path(tile::TileId from,
                                                    tile::TileId to,
                                                    const EdgeCostFn& cost) {
  begin_pass();
  MinHeap heap;
  touch(from, 0.0, tile::kNoTile);
  heap.push({0.0, from});
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist > dist_[static_cast<std::size_t>(top.tile)]) continue;
    if (top.tile == to) break;
    tile::TileId nbr[4];
    const int n = g_.neighbors(top.tile, nbr);
    for (int k = 0; k < n; ++k) {
      const tile::EdgeId e = g_.edge_between(top.tile, nbr[k]);
      const double nd = top.dist + cost(e);
      if (!seen(nbr[k]) || nd < dist_[static_cast<std::size_t>(nbr[k])]) {
        touch(nbr[k], nd, top.tile);
        heap.push({nd, nbr[k]});
      }
    }
  }
  RABID_ASSERT_MSG(seen(to), "no path between tiles");
  std::vector<tile::TileId> path;
  for (tile::TileId t = to; t != tile::kNoTile;
       t = prev_[static_cast<std::size_t>(t)]) {
    path.push_back(t);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace rabid::route
