#pragma once

/// \file rsmt.hpp
/// Exact rectilinear Steiner minimal trees for small nets.
///
/// Hanan's theorem: some RSMT uses only Steiner points on the Hanan grid
/// (the intersections of the terminals' x and y coordinates), and at
/// most n-2 of them.  For n <= 5 terminals exhaustive enumeration of
/// those subsets is tiny, giving a provably minimal tree — useful as a
/// wirelength yardstick for the Prim-Dijkstra construction and as an
/// optional Stage-1 mode for non-critical nets (min wirelength instead
/// of the radius trade-off).

#include <cstdint>
#include <span>

#include "route/steiner.hpp"

namespace rabid::route {

/// Largest terminal count rsmt_exact accepts.
constexpr std::int32_t kMaxExactRsmtTerminals = 5;

/// The provably minimum-length rectilinear Steiner tree over
/// `terminals`, rooted at `source_index`.  Requires
/// 1 <= terminals.size() <= kMaxExactRsmtTerminals.
GeomTree rsmt_exact(std::span<const geom::Point> terminals,
                    std::int32_t source_index);

/// Lower bound on any rectilinear Steiner tree: the half-perimeter of
/// the terminals' bounding box.
double hpwl(std::span<const geom::Point> terminals);

}  // namespace rabid::route
