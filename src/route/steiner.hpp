#pragma once

/// \file steiner.hpp
/// Greedy spanning-tree-to-Steiner-tree conversion (RABID Stage 1, Fig. 4).
///
/// The spanning tree is repeatedly improved by finding the pair of
/// adjacent tree edges with the largest Manhattan wirelength overlap and
/// splitting them at a Steiner point (the component-wise median of the
/// shared endpoint and the two far endpoints).  Terminates when no pair
/// of adjacent edges overlaps.

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "route/prim_dijkstra.hpp"

namespace rabid::route {

/// A rooted geometric tree whose first `terminal_count` points are the
/// net's pins and the rest are introduced Steiner points.
struct GeomTree {
  std::vector<geom::Point> points;
  std::vector<std::int32_t> parent;  ///< arc to parent; root has -1
  std::int32_t root = 0;
  std::int32_t terminal_count = 0;

  double wirelength() const;
};

/// Wraps a spanning tree into a GeomTree (no Steiner points yet).
GeomTree to_geom_tree(std::span<const geom::Point> terminals,
                      const SpanningTree& tree, std::int32_t source_index);

/// Greedy pairwise overlap removal.  The result spans the same terminals,
/// has wirelength <= the input's, and remains a tree rooted at the same
/// source.
GeomTree remove_overlaps(const GeomTree& input);

/// The wirelength saved by merging edges (u,a) and (u,b) at the median
/// Steiner point of {u, a, b}.  Exposed for tests.
double overlap_gain(const geom::Point& u, const geom::Point& a,
                    const geom::Point& b);

/// Component-wise median of three points: the optimal Steiner point for
/// a three-terminal net.
geom::Point median_point(const geom::Point& u, const geom::Point& a,
                         const geom::Point& b);

}  // namespace rabid::route
