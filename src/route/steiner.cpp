#include "route/steiner.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace rabid::route {

namespace {

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

/// Undirected adjacency view of a tree, rebuilt into a rooted GeomTree at
/// the end; overlap removal is easier without parent/child bookkeeping.
struct Adjacency {
  std::vector<std::vector<std::int32_t>> nbr;

  void add(std::int32_t a, std::int32_t b) {
    nbr[static_cast<std::size_t>(a)].push_back(b);
    nbr[static_cast<std::size_t>(b)].push_back(a);
  }
  void remove(std::int32_t a, std::int32_t b) {
    auto& na = nbr[static_cast<std::size_t>(a)];
    na.erase(std::find(na.begin(), na.end(), b));
    auto& nb = nbr[static_cast<std::size_t>(b)];
    nb.erase(std::find(nb.begin(), nb.end(), a));
  }
};

}  // namespace

double GeomTree::wirelength() const {
  double total = 0.0;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] < 0) continue;
    total += geom::manhattan(points[i],
                             points[static_cast<std::size_t>(parent[i])]);
  }
  return total;
}

GeomTree to_geom_tree(std::span<const geom::Point> terminals,
                      const SpanningTree& tree, std::int32_t source_index) {
  GeomTree out;
  out.points.assign(terminals.begin(), terminals.end());
  out.parent = tree.parent;
  out.root = source_index;
  out.terminal_count = static_cast<std::int32_t>(terminals.size());
  return out;
}

geom::Point median_point(const geom::Point& u, const geom::Point& a,
                         const geom::Point& b) {
  return {median3(u.x, a.x, b.x), median3(u.y, a.y, b.y)};
}

double overlap_gain(const geom::Point& u, const geom::Point& a,
                    const geom::Point& b) {
  const geom::Point s = median_point(u, a, b);
  return geom::manhattan(u, a) + geom::manhattan(u, b) -
         (geom::manhattan(u, s) + geom::manhattan(s, a) +
          geom::manhattan(s, b));
}

GeomTree remove_overlaps(const GeomTree& input) {
  std::vector<geom::Point> pts = input.points;
  Adjacency adj;
  adj.nbr.resize(pts.size());
  for (std::size_t i = 0; i < input.parent.size(); ++i) {
    if (input.parent[i] >= 0)
      adj.add(static_cast<std::int32_t>(i), input.parent[i]);
  }

  // Greedy: find the globally best overlapping adjacent-edge pair, split
  // it, repeat.  Nets have tens of pins, so the quadratic rescan is fine.
  constexpr double kMinGain = 1e-9;
  for (;;) {
    double best_gain = kMinGain;
    std::int32_t best_u = -1, best_a = -1, best_b = -1;
    for (std::size_t u = 0; u < pts.size(); ++u) {
      const auto& nu = adj.nbr[u];
      for (std::size_t i = 0; i < nu.size(); ++i) {
        for (std::size_t j = i + 1; j < nu.size(); ++j) {
          const double gain =
              overlap_gain(pts[u], pts[static_cast<std::size_t>(nu[i])],
                           pts[static_cast<std::size_t>(nu[j])]);
          if (gain > best_gain) {
            best_gain = gain;
            best_u = static_cast<std::int32_t>(u);
            best_a = nu[i];
            best_b = nu[j];
          }
        }
      }
    }
    if (best_u < 0) break;
    const geom::Point s =
        median_point(pts[static_cast<std::size_t>(best_u)],
                     pts[static_cast<std::size_t>(best_a)],
                     pts[static_cast<std::size_t>(best_b)]);
    const auto sid = static_cast<std::int32_t>(pts.size());
    pts.push_back(s);
    adj.nbr.emplace_back();
    adj.remove(best_u, best_a);
    adj.remove(best_u, best_b);
    adj.add(best_u, sid);
    adj.add(sid, best_a);
    adj.add(sid, best_b);
  }

  // Re-root the undirected tree at the source via BFS.
  GeomTree out;
  out.points = std::move(pts);
  out.parent.assign(out.points.size(), -2);  // -2 == unvisited
  out.root = input.root;
  out.terminal_count = input.terminal_count;
  std::queue<std::int32_t> frontier;
  frontier.push(out.root);
  out.parent[static_cast<std::size_t>(out.root)] = -1;
  while (!frontier.empty()) {
    const std::int32_t u = frontier.front();
    frontier.pop();
    for (const std::int32_t v : adj.nbr[static_cast<std::size_t>(u)]) {
      if (out.parent[static_cast<std::size_t>(v)] == -2) {
        out.parent[static_cast<std::size_t>(v)] = u;
        frontier.push(v);
      }
    }
  }
  for (const std::int32_t p : out.parent) {
    RABID_ASSERT_MSG(p != -2, "overlap removal disconnected the tree");
  }
  return out;
}

}  // namespace rabid::route
