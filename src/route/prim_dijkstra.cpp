#include "route/prim_dijkstra.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace rabid::route {

SpanningTree prim_dijkstra(std::span<const geom::Point> terminals,
                           std::int32_t source_index, double alpha) {
  const auto n = static_cast<std::int32_t>(terminals.size());
  RABID_ASSERT_MSG(n > 0, "prim_dijkstra needs at least one terminal");
  RABID_ASSERT(source_index >= 0 && source_index < n);
  RABID_ASSERT_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");

  SpanningTree tree;
  tree.parent.assign(static_cast<std::size_t>(n), -1);
  tree.path_length.assign(static_cast<std::size_t>(n), 0.0);

  constexpr double kInf = std::numeric_limits<double>::max();
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  std::vector<double> key(static_cast<std::size_t>(n), kInf);
  std::vector<std::int32_t> best_parent(static_cast<std::size_t>(n), -1);

  // O(n^2) PD: terminal counts per net are small (tens), so the simple
  // quadratic scan beats a heap and is trivially deterministic.
  key[static_cast<std::size_t>(source_index)] = 0.0;
  for (std::int32_t added = 0; added < n; ++added) {
    std::int32_t u = -1;
    double best = kInf;
    for (std::int32_t i = 0; i < n; ++i) {
      if (!in_tree[static_cast<std::size_t>(i)] &&
          key[static_cast<std::size_t>(i)] < best) {
        best = key[static_cast<std::size_t>(i)];
        u = i;
      }
    }
    RABID_ASSERT_MSG(u >= 0, "disconnected terminal set (impossible)");
    in_tree[static_cast<std::size_t>(u)] = true;
    if (u != source_index) {
      const auto p = best_parent[static_cast<std::size_t>(u)];
      tree.parent[static_cast<std::size_t>(u)] = p;
      tree.path_length[static_cast<std::size_t>(u)] =
          tree.path_length[static_cast<std::size_t>(p)] +
          geom::manhattan(terminals[static_cast<std::size_t>(u)],
                          terminals[static_cast<std::size_t>(p)]);
    }
    for (std::int32_t v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      const double cand =
          alpha * tree.path_length[static_cast<std::size_t>(u)] +
          geom::manhattan(terminals[static_cast<std::size_t>(u)],
                          terminals[static_cast<std::size_t>(v)]);
      if (cand < key[static_cast<std::size_t>(v)]) {
        key[static_cast<std::size_t>(v)] = cand;
        best_parent[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return tree;
}

double tree_wirelength(std::span<const geom::Point> terminals,
                       const SpanningTree& tree) {
  double total = 0.0;
  for (std::size_t i = 0; i < tree.parent.size(); ++i) {
    const std::int32_t p = tree.parent[i];
    if (p < 0) continue;
    total += geom::manhattan(terminals[i],
                             terminals[static_cast<std::size_t>(p)]);
  }
  return total;
}

double tree_radius(const SpanningTree& tree) {
  double radius = 0.0;
  for (const double len : tree.path_length) radius = std::max(radius, len);
  return radius;
}

}  // namespace rabid::route
