#pragma once

/// \file prim_dijkstra.hpp
/// The Prim-Dijkstra spanning-tree construction of Alpert et al. [4]
/// (IEEE TCAD 14(7), 1995), used by RABID Stage 1.
///
/// PD interpolates between Prim's minimum spanning tree (alpha = 0) and
/// Dijkstra's shortest-path tree (alpha = 1): an unconnected terminal v is
/// attached to the connected terminal u minimizing
///     alpha * pathlength(source, u) + dist(u, v).
/// The paper's experiments use alpha = 0.4 (footnote 5).

#include <span>
#include <vector>

#include "geom/point.hpp"

namespace rabid::route {

/// Default radius/wirelength trade-off from the paper.
constexpr double kDefaultPdAlpha = 0.4;

/// A spanning tree over a terminal set, arcs directed toward the source.
struct SpanningTree {
  /// parent[i] is the terminal index i attaches to; parent[source] == -1.
  std::vector<std::int32_t> parent;
  /// Manhattan path length from the source to each terminal.
  std::vector<double> path_length;
};

/// Builds the PD tree over `terminals` rooted at `source_index` using
/// Manhattan distance.  Requires terminals non-empty and a valid index.
SpanningTree prim_dijkstra(std::span<const geom::Point> terminals,
                           std::int32_t source_index, double alpha);

/// Total Manhattan wirelength of a spanning tree.
double tree_wirelength(std::span<const geom::Point> terminals,
                       const SpanningTree& tree);

/// Maximum source-to-terminal path length (the tree radius).
double tree_radius(const SpanningTree& tree);

}  // namespace rabid::route
