#pragma once

/// \file maze.hpp
/// Congestion-aware Steiner-tree regrowth on the tile graph (RABID
/// Stage 2, and the routing engine behind Stage 4).
///
/// A net is rerouted by deleting it entirely and regrowing the tree with
/// a Prim-Dijkstra-flavored wavefront: each connection step runs a
/// best-first search seeded from every tree tile at cost
/// alpha * (tree path cost), expands with the eq. (1) congestion edge
/// cost, and commits the cheapest path to any unconnected sink.
///
/// Two hot-path engineering layers sit on top of the textbook search
/// (DESIGN.md section 10):
///
///   * **A\* targeting.**  Passing `astar_floor > 0` adds the admissible
///     heuristic  h(t) = astar_floor * (Manhattan tile distance from t
///     to the nearest remaining target).  Any single wavefront step
///     costs at least `astar_floor` (a lower bound on every edge cost),
///     and reaching a target takes at least the Manhattan distance in
///     steps, so h never overestimates; it is also consistent (adjacent
///     tiles differ by at most one step).  The first target popped
///     therefore still carries the exact minimum cost — identical to
///     Dijkstra's — but the wavefront stays aimed at the targets instead
///     of flooding the chip.  `astar_floor == 0` reproduces plain
///     Dijkstra expansion order bit for bit.
///
///   * **Flat edge costs.**  The inner loop takes a per-pass
///     `std::span<const double>` of edge costs (one load per
///     relaxation) instead of a `std::function` callback (an indirect
///     call plus the eq. 1 division per relaxation).  EdgeCostCache
///     owns such an array and keeps it consistent under rip-up/commit.
///
/// Eq. (1) is infinite on a full edge; to guarantee the router always
/// completes (the paper's Table III shows overflow IS possible when
/// resources are scarce), full edges get a large finite penalty instead,
/// so overflow happens only when no feasible path exists and is then
/// minimal.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "route/route_tree.hpp"
#include "tile/region.hpp"
#include "tile/tile_graph.hpp"
#include "util/dheap.hpp"

namespace rabid::route {

/// Per-extra-wire penalty applied past capacity.  Any overflowing path
/// costs more than any feasible path of realistic length.
constexpr double kOverflowPenalty = 1.0e7;

/// Eq. (1) with the overflow tier: finite everywhere.
double soft_wire_cost(const tile::TileGraph& g, tile::EdgeId e);

/// Edge-cost callback; defaults to soft_wire_cost.
using EdgeCostFn = std::function<double(tile::EdgeId)>;

/// Per-pass flat cache of edge costs: `values()[e]` is the current cost
/// of edge e, so the router's inner loop is one array load instead of a
/// std::function call plus a division.  The owner refreshes entries only
/// when usage actually changes (rip-up / commit), via refresh_edge() or
/// refresh_tree().
///
/// min_cost() is a conservative lower bound on every cached cost — the
/// admissible A* step floor.  refresh_all() recomputes it exactly;
/// point refreshes only ever lower it (a stale-high bound would break
/// admissibility, a stale-low one merely weakens the heuristic).
class EdgeCostCache {
 public:
  EdgeCostCache(const tile::TileGraph& g, EdgeCostFn base);

  /// Recomputes every edge cost and the exact minimum.
  void refresh_all();
  /// Recomputes one edge's cost (after add_wire/remove_wire on it).
  void refresh_edge(tile::EdgeId e);
  /// Recomputes one edge's cost after its *capacity* changed
  /// (set_wire_capacity — the ECO perturbation path).  A usage change
  /// can only raise an edge's cost toward the overflow tier, but a
  /// capacity change moves it in either direction: a capacity increase
  /// can drop the true cost below the cached min_cost() floor, which
  /// would make the A* heuristic inadmissible and routes silently
  /// non-optimal.  This entry point lowers the floor against the new
  /// value exactly like refresh_edge(), and exists as its own verb so
  /// capacity edits cannot be "optimized away" as usage refreshes.
  void on_capacity_change(tile::EdgeId e);
  /// Recomputes the cost of every tile-graph edge `tree` crosses — the
  /// exact set whose usage a commit() or uncommit() of `tree` changed.
  void refresh_tree(const RouteTree& tree);

  /// Sharded variant of refresh_tree: updates the shared flat array but
  /// lowers the caller-owned `floor` instead of the global min_cost().
  /// Concurrent shards touching disjoint edge sets stay race-free —
  /// each owns its floor, and the array writes hit distinct elements.
  void refresh_tree_sharded(const RouteTree& tree, double& floor);

  /// Folds a shard-local floor back into the global bound after a
  /// parallel phase (the bound only ever moves down between full
  /// refreshes, exactly like refresh_edge()).
  void lower_min(double floor) { min_cost_ = std::min(min_cost_, floor); }

  /// Exact minimum cached cost over `edges` (e.g. a region's interior
  /// edge list): a tighter region-local A* floor than the global
  /// min_cost() — in congested runs this alone shrinks wavefronts.
  double min_over(std::span<const tile::EdgeId> edges) const;

  std::span<const double> values() const { return values_; }
  double min_cost() const { return min_cost_; }
  double operator[](tile::EdgeId e) const {
    return values_[static_cast<std::size_t>(e)];
  }

  /// Bytes held by the flat cost array (obs memory accounting).
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(values_.capacity()) * sizeof(double);
  }

 private:
  const tile::TileGraph& g_;
  EdgeCostFn base_;
  std::vector<double> values_;
  double min_cost_ = 0.0;
};

/// Reusable wavefront router.  All scratch — distance/parent labels,
/// target flags, the heap's backing storage, per-pass A* bounds — lives
/// in stamped member arrays sized once per graph, so routing a net
/// performs no allocation after warm-up (beyond the returned tree).
class MazeRouter {
 public:
  explicit MazeRouter(const tile::TileGraph& g);

  /// Grows a tree from `source_tile` to every tile in `sink_tiles`
  /// (duplicates allowed; multiplicity becomes sink_count).  `alpha` is
  /// the PD radius/length trade-off; `cost` the per-edge cost.
  /// `astar_floor` > 0 enables A* targeting (see file comment); it must
  /// be a lower bound on every edge cost, e.g. EdgeCostCache::min_cost().
  RouteTree grow(tile::TileId source_tile,
                 std::span<const tile::TileId> sink_tiles, double alpha,
                 std::span<const double> cost, double astar_floor = 0.0);
  RouteTree grow(tile::TileId source_tile,
                 std::span<const tile::TileId> sink_tiles, double alpha,
                 const EdgeCostFn& cost, double astar_floor = 0.0);

  /// Convenience for a Net: maps pins to tiles and grows.
  RouteTree route_net(const netlist::Net& net, double alpha,
                      std::span<const double> cost, double astar_floor = 0.0);
  RouteTree route_net(const netlist::Net& net, double alpha,
                      const EdgeCostFn& cost, double astar_floor = 0.0);

  /// Lowest-cost tile path between two tiles under `cost` (both endpoints
  /// included).  Used by tests and simple point-to-point reconnects.
  std::vector<tile::TileId> shortest_path(tile::TileId from, tile::TileId to,
                                          std::span<const double> cost,
                                          double astar_floor = 0.0);
  std::vector<tile::TileId> shortest_path(tile::TileId from, tile::TileId to,
                                          const EdgeCostFn& cost,
                                          double astar_floor = 0.0);

  /// Confines every subsequent search to the tiles of `span` (inclusive
  /// tile-coordinate bounds): neighbors outside are never expanded, so
  /// only edges with BOTH endpoints inside are read or traversed.  All
  /// seeds and targets must lie inside (asserted by the unreachable-sink
  /// check otherwise).  Region-sharded stage 2 routes region-local nets
  /// under confinement, which is what keeps concurrent shards' edge
  /// reads and writes disjoint.  Also a pure single-thread win: a
  /// congested wavefront floods at most the region, not the chip.
  void confine(tile::TileSpan span);
  /// Removes the confinement (the default: the whole grid).
  void unconfine() { confined_ = false; }

  /// Bytes held by the router's scratch (labels, heap backing, work
  /// lists) — the obs memory.maze_scratch accounting.
  std::uint64_t memory_bytes() const;

 private:
  struct HeapEntry {
    double key;  ///< dist + heuristic; == dist when A* is off
    double dist;
    tile::TileId tile;
    // Tie-break on tile id so expansion order (and thus routes) is fully
    // deterministic regardless of heap internals.
    bool operator>(const HeapEntry& o) const {
      if (key != o.key) return key > o.key;
      return tile > o.tile;
    }
  };

  template <typename CostT>
  RouteTree grow_impl(tile::TileId source_tile,
                      std::span<const tile::TileId> sink_tiles, double alpha,
                      const CostT& cost, double astar_floor);
  template <typename CostT>
  std::vector<tile::TileId> shortest_path_impl(tile::TileId from,
                                               tile::TileId to,
                                               const CostT& cost,
                                               double astar_floor);

  void heap_push(HeapEntry e) { heap_.push(e); }
  HeapEntry heap_pop() { return heap_.pop(); }

  /// One 32-byte row per tile holding every stamped per-tile scratch
  /// value (distance/parent labels, the per-pass A* memo, the target
  /// mark), so a relaxation touches one cache line instead of walking
  /// six parallel arrays.
  struct Label {
    double dist;
    double h;                   ///< per-pass A* bound memo
    tile::TileId prev;
    std::uint32_t stamp;        ///< validates dist/prev (epoch_)
    std::uint32_t h_stamp;      ///< validates h (epoch_)
    std::uint32_t target_stamp; ///< tile is a target (target_epoch_)
  };
  static_assert(sizeof(Label) == 32);

  const tile::TileGraph& g_;
  std::vector<Label> labels_;
  std::uint32_t epoch_ = 0;
  std::uint32_t target_epoch_ = 0;
  std::vector<geom::TileCoord> target_coords_;

  /// Confinement mask: in_region_[t] != 0 iff tile t is inside the
  /// confined span.  A one-byte load per relaxation; confine() clears
  /// only the previously set span before painting the new one, so
  /// per-net clips (the sharded boundary replay) cost O(clip), not
  /// O(chip).
  bool confined_ = false;
  tile::TileSpan confined_span_;
  std::vector<std::uint8_t> in_region_;

  // Reusable wavefront storage: heap backing plus grow()'s worklists.
  util::DaryHeap<HeapEntry> heap_;
  std::vector<tile::TileId> remaining_;
  std::vector<double> path_cost_;
  std::vector<tile::TileId> path_;

  void begin_pass() { ++epoch_; }
  bool seen(tile::TileId t) const {
    return labels_[static_cast<std::size_t>(t)].stamp == epoch_;
  }
  void touch(tile::TileId t, double d, tile::TileId p) {
    Label& l = labels_[static_cast<std::size_t>(t)];
    l.dist = d;
    l.prev = p;
    l.stamp = epoch_;
  }
  bool is_target(tile::TileId t) const {
    return labels_[static_cast<std::size_t>(t)].target_stamp == target_epoch_;
  }
};

}  // namespace rabid::route
