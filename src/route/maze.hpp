#pragma once

/// \file maze.hpp
/// Congestion-aware Steiner-tree regrowth on the tile graph (RABID
/// Stage 2, and the routing engine behind Stage 4).
///
/// A net is rerouted by deleting it entirely and regrowing the tree with
/// a Prim-Dijkstra-flavored wavefront: each connection step runs a
/// Dijkstra seeded from every tree tile at cost alpha * (tree path cost),
/// expands with the eq. (1) congestion edge cost, and commits the
/// cheapest path to any unconnected sink.
///
/// Eq. (1) is infinite on a full edge; to guarantee the router always
/// completes (the paper's Table III shows overflow IS possible when
/// resources are scarce), full edges get a large finite penalty instead,
/// so overflow happens only when no feasible path exists and is then
/// minimal.

#include <functional>
#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::route {

/// Per-extra-wire penalty applied past capacity.  Any overflowing path
/// costs more than any feasible path of realistic length.
constexpr double kOverflowPenalty = 1.0e7;

/// Eq. (1) with the overflow tier: finite everywhere.
double soft_wire_cost(const tile::TileGraph& g, tile::EdgeId e);

/// Edge-cost callback; defaults to soft_wire_cost.
using EdgeCostFn = std::function<double(tile::EdgeId)>;

/// Reusable wavefront router; scratch arrays are sized once per graph.
class MazeRouter {
 public:
  explicit MazeRouter(const tile::TileGraph& g);

  /// Grows a tree from `source_tile` to every tile in `sink_tiles`
  /// (duplicates allowed; multiplicity becomes sink_count).  `alpha` is
  /// the PD radius/length trade-off; `cost` the per-edge cost.
  RouteTree grow(tile::TileId source_tile,
                 std::span<const tile::TileId> sink_tiles, double alpha,
                 const EdgeCostFn& cost);

  /// Convenience for a Net: maps pins to tiles and grows.
  RouteTree route_net(const netlist::Net& net, double alpha,
                      const EdgeCostFn& cost);

  /// Lowest-cost tile path between two tiles under `cost` (both endpoints
  /// included).  Used by tests and simple point-to-point reconnects.
  std::vector<tile::TileId> shortest_path(tile::TileId from, tile::TileId to,
                                          const EdgeCostFn& cost);

 private:
  const tile::TileGraph& g_;
  std::vector<double> dist_;
  std::vector<tile::TileId> prev_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;

  void begin_pass() { ++epoch_; }
  bool seen(tile::TileId t) const {
    return stamp_[static_cast<std::size_t>(t)] == epoch_;
  }
  void touch(tile::TileId t, double d, tile::TileId p) {
    stamp_[static_cast<std::size_t>(t)] = epoch_;
    dist_[static_cast<std::size_t>(t)] = d;
    prev_[static_cast<std::size_t>(t)] = p;
  }
};

}  // namespace rabid::route
