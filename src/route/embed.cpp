#include "route/embed.hpp"

#include <vector>

#include "util/assert.hpp"

namespace rabid::route {

namespace {

/// Walks the L-path (x-first) from the tree node `from` to tile `target`,
/// adding missing tiles and re-anchoring on existing ones. Returns the
/// node at `target`.
NodeId walk_l_path(RouteTree& tree, const tile::TileGraph& g, NodeId from,
                   tile::TileId target) {
  NodeId cur = from;
  geom::TileCoord c = g.coord_of(tree.node(cur).tile);
  const geom::TileCoord t = g.coord_of(target);
  auto step_to = [&](geom::TileCoord next) {
    const tile::TileId nt = g.id_of(next);
    const NodeId existing = tree.node_at(nt);
    cur = (existing != kNoNode) ? existing : tree.add_child(cur, nt);
    c = next;
  };
  while (c.x != t.x) step_to({c.x + (t.x > c.x ? 1 : -1), c.y});
  while (c.y != t.y) step_to({c.x, c.y + (t.y > c.y ? 1 : -1)});
  return cur;
}

}  // namespace

RouteTree embed_tree(const GeomTree& gtree, const netlist::Net& net,
                     const tile::TileGraph& g) {
  RABID_ASSERT(gtree.terminal_count ==
               static_cast<std::int32_t>(net.sinks.size()) + 1);
  RABID_ASSERT_MSG(gtree.root == 0, "embed expects the source at index 0");

  const tile::TileId source_tile = g.tile_at(net.source.location);
  RouteTree tree(source_tile);

  // Children-first ordering: process arcs top-down from the root so the
  // anchor node always exists before its subtree is embedded.
  std::vector<std::vector<std::int32_t>> children(gtree.points.size());
  for (std::size_t i = 0; i < gtree.parent.size(); ++i) {
    if (gtree.parent[i] >= 0)
      children[static_cast<std::size_t>(gtree.parent[i])].push_back(
          static_cast<std::int32_t>(i));
  }
  std::vector<NodeId> node_of(gtree.points.size(), kNoNode);
  node_of[static_cast<std::size_t>(gtree.root)] = tree.root();
  std::vector<std::int32_t> stack{gtree.root};
  while (!stack.empty()) {
    const std::int32_t u = stack.back();
    stack.pop_back();
    for (const std::int32_t v : children[static_cast<std::size_t>(u)]) {
      const tile::TileId vt = g.tile_at(gtree.points[static_cast<std::size_t>(v)]);
      node_of[static_cast<std::size_t>(v)] =
          walk_l_path(tree, g, node_of[static_cast<std::size_t>(u)], vt);
      stack.push_back(v);
    }
  }

  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    const NodeId n = node_of[s + 1];
    RABID_ASSERT_MSG(n != kNoNode, "sink terminal not embedded");
    tree.add_sink(n);
  }
  return tree;
}

RouteTree build_initial_route(const netlist::Net& net,
                              const tile::TileGraph& g, double alpha) {
  std::vector<geom::Point> terminals;
  terminals.reserve(net.sinks.size() + 1);
  terminals.push_back(net.source.location);
  for (const netlist::Pin& p : net.sinks) terminals.push_back(p.location);

  const SpanningTree span = prim_dijkstra(terminals, 0, alpha);
  const GeomTree steiner = remove_overlaps(to_geom_tree(terminals, span, 0));
  return embed_tree(steiner, net, g);
}

}  // namespace rabid::route
