#pragma once

/// \file negotiated.hpp
/// Negotiated-congestion (PathFinder-style) cost bookkeeping.
///
/// The paper's future work wants "an industrial tile graph-based global
/// router" behind Stages 1-2.  The industrial standard is negotiated
/// congestion (McMurchie & Ebeling, FPGA'95): nets may temporarily
/// overuse edges; each iteration raises a persistent *history* price on
/// overused edges and a growing *present-sharing* multiplier, until the
/// solution is feasible.  Compared with the paper's Nair-style eq. (1)
/// rip-up (which forbids overuse outright and so detours eagerly),
/// negotiation tends to buy back wirelength on uncongested fabric.
///
/// This header provides the cost state; core::Rabid offers it as an
/// alternative Stage-2 mode (RabidOptions::stage2_mode).

#include <cstdint>
#include <vector>

#include "tile/tile_graph.hpp"

namespace rabid::route {

struct NegotiationParams {
  double pres_fac_first = 0.5;   ///< present-sharing factor, iteration 1
  double pres_fac_mult = 1.8;    ///< growth per iteration
  double history_step = 0.4;     ///< history added per unit overuse
  std::int32_t max_iterations = 12;
};

/// Per-edge negotiation state.
class NegotiationState {
 public:
  NegotiationState(const tile::TileGraph& g, NegotiationParams params = {});

  /// PathFinder cost of pushing one more wire across e, given the
  /// graph's *current* usage: (base + history) * present-sharing.
  double cost(tile::EdgeId e) const;

  /// Ends an iteration: accrues history on every overused edge and
  /// raises the present-sharing factor.  Returns the total overuse seen.
  std::int64_t finish_iteration();

  double pres_fac() const { return pres_fac_; }
  double history(tile::EdgeId e) const {
    return history_[static_cast<std::size_t>(e)];
  }
  const NegotiationParams& params() const { return params_; }

 private:
  const tile::TileGraph& g_;
  NegotiationParams params_;
  std::vector<double> history_;
  double pres_fac_;
};

}  // namespace rabid::route
