#pragma once

/// \file embed.hpp
/// Embeds a geometric (Steiner) tree onto the tile graph, producing the
/// tile-level RouteTree that all later stages operate on.
///
/// Each geometric arc becomes an L-shaped staircase of tile steps
/// (x-first, deterministically).  When a step lands on a tile already in
/// the tree the walk re-anchors there, so the result is always a valid
/// tree even when arcs cross.
///
/// Reentrancy: both entry points read only the net and the graph's
/// geometry (tiling, never the w(e)/b(v) usage books) and keep no
/// shared state, so distinct nets may be built concurrently against the
/// same graph — the contract core::Rabid's parallel Stage 1 relies on.

#include "netlist/design.hpp"
#include "route/route_tree.hpp"
#include "route/steiner.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::route {

/// Embeds `gtree` (whose first terminal_count points are `net`'s pins:
/// index 0 the source, 1..k the sinks, matching build order) onto `g`.
/// Sink multiplicity is preserved: the returned tree's total_sinks()
/// equals net.sinks.size().
RouteTree embed_tree(const GeomTree& gtree, const netlist::Net& net,
                     const tile::TileGraph& g);

/// Convenience: full Stage-1 pipeline for one net — PD spanning tree
/// (alpha), overlap removal, tile embedding.
RouteTree build_initial_route(const netlist::Net& net,
                              const tile::TileGraph& g, double alpha);

}  // namespace rabid::route
