#include "route/negotiated.hpp"

#include "util/assert.hpp"

namespace rabid::route {

NegotiationState::NegotiationState(const tile::TileGraph& g,
                                   NegotiationParams params)
    : g_(g),
      params_(params),
      history_(static_cast<std::size_t>(g.edge_count()), 0.0),
      pres_fac_(params.pres_fac_first) {
  RABID_ASSERT(params.pres_fac_first > 0.0);
  RABID_ASSERT(params.pres_fac_mult > 1.0);
  RABID_ASSERT(params.history_step > 0.0);
  RABID_ASSERT(params.max_iterations >= 1);
}

double NegotiationState::cost(tile::EdgeId e) const {
  // Overuse *if this wire were added*.
  const std::int32_t over =
      g_.wire_usage(e) + 1 - g_.wire_capacity(e);
  const double present =
      over > 0 ? 1.0 + static_cast<double>(over) * pres_fac_ : 1.0;
  return (1.0 + history_[static_cast<std::size_t>(e)]) * present;
}

std::int64_t NegotiationState::finish_iteration() {
  std::int64_t total_overuse = 0;
  for (tile::EdgeId e = 0; e < g_.edge_count(); ++e) {
    const std::int32_t over = g_.wire_usage(e) - g_.wire_capacity(e);
    if (over > 0) {
      total_overuse += over;
      history_[static_cast<std::size_t>(e)] +=
          params_.history_step * static_cast<double>(over);
    }
  }
  pres_fac_ *= params_.pres_fac_mult;
  return total_overuse;
}

}  // namespace rabid::route
