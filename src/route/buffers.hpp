#pragma once

/// \file buffers.hpp
/// Buffer placements on a route tree.
///
/// A buffer lives in a tile (consuming one of its buffer sites) at a
/// route-tree node, in one of two roles (Fig. 8 of the paper):
///   * driving buffer  (child == kNoNode): drives everything downstream
///     of the node — all branches jointly;
///   * decoupling buffer (child == a child node id): drives only the
///     branch toward `child`, isolating it from the node's other load.
/// Several buffers may share one tile (Fig. 8(b)/(d)).

#include <vector>

#include "route/route_tree.hpp"

namespace rabid::route {

struct BufferPlacement {
  NodeId node = kNoNode;
  NodeId child = kNoNode;  ///< kNoNode = driving buffer; else decoupling

  friend bool operator==(const BufferPlacement&,
                         const BufferPlacement&) = default;
};

using BufferList = std::vector<BufferPlacement>;

}  // namespace rabid::route
