#include "route/route_tree.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "util/assert.hpp"

namespace rabid::route {

namespace {

using TilePair = std::pair<tile::TileId, NodeId>;

auto tile_less = [](const TilePair& a, tile::TileId t) { return a.first < t; };

}  // namespace

RouteTree::RouteTree(tile::TileId source) {
  nodes_.push_back(RouteNode{source, kNoNode, {}, 0});
  by_tile_.emplace_back(source, 0);
}

NodeId RouteTree::node_at(tile::TileId t) const {
  const auto it =
      std::lower_bound(by_tile_.begin(), by_tile_.end(), t, tile_less);
  if (it != by_tile_.end() && it->first == t) return it->second;
  return kNoNode;
}

NodeId RouteTree::add_child(NodeId parent, tile::TileId t) {
  RABID_ASSERT(parent >= 0 &&
               parent < static_cast<NodeId>(nodes_.size()));
  RABID_ASSERT_MSG(node_at(t) == kNoNode, "tile already in route tree");
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(RouteNode{t, parent, {}, 0});
  nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  const auto it =
      std::lower_bound(by_tile_.begin(), by_tile_.end(), t, tile_less);
  by_tile_.insert(it, {t, id});
  return id;
}

std::vector<NodeId> RouteTree::sink_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].sink_count > 0) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::int32_t RouteTree::total_sinks() const {
  std::int32_t total = 0;
  for (const RouteNode& n : nodes_) total += n.sink_count;
  return total;
}

double RouteTree::wirelength_um(const tile::TileGraph& g) const {
  double total = 0.0;
  for (const RouteNode& n : nodes_) {
    if (n.parent == kNoNode) continue;
    const auto a = g.coord_of(n.tile);
    const auto b = g.coord_of(nodes_[static_cast<std::size_t>(n.parent)].tile);
    total += (a.y == b.y) ? g.tile_width() : g.tile_height();
  }
  return total;
}

std::int32_t RouteTree::depth(NodeId n) const {
  std::int32_t d = 0;
  while (nodes_.at(static_cast<std::size_t>(n)).parent != kNoNode) {
    n = nodes_[static_cast<std::size_t>(n)].parent;
    ++d;
  }
  return d;
}

void RouteTree::commit(tile::TileGraph& g, std::int32_t width) const {
  RABID_ASSERT(width >= 1);
  std::uint64_t arcs = 0;
  for (const RouteNode& n : nodes_) {
    if (n.parent == kNoNode) continue;
    const tile::EdgeId e = g.edge_between(
        n.tile, nodes_[static_cast<std::size_t>(n.parent)].tile);
    RABID_ASSERT_MSG(e != tile::kNoEdge, "route arc not tile-adjacent");
    for (std::int32_t k = 0; k < width; ++k) g.add_wire(e);
    ++arcs;
  }
  obs::count(obs::Counter::kWireUnitsCommitted,
             arcs * static_cast<std::uint64_t>(width));
}

void RouteTree::uncommit(tile::TileGraph& g, std::int32_t width) const {
  RABID_ASSERT(width >= 1);
  std::uint64_t arcs = 0;
  for (const RouteNode& n : nodes_) {
    if (n.parent == kNoNode) continue;
    const tile::EdgeId e = g.edge_between(
        n.tile, nodes_[static_cast<std::size_t>(n.parent)].tile);
    RABID_ASSERT(e != tile::kNoEdge);
    for (std::int32_t k = 0; k < width; ++k) g.remove_wire(e);
    ++arcs;
  }
  obs::count(obs::Counter::kWireUnitsRemoved,
             arcs * static_cast<std::uint64_t>(width));
}

std::vector<NodeId> RouteTree::preorder() const {
  // Nodes are appended parent-first by construction, so index order is
  // already topological.
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    order[i] = static_cast<NodeId>(i);
  return order;
}

std::vector<NodeId> RouteTree::postorder() const {
  std::vector<NodeId> order = preorder();
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<RouteTree::TwoPath> RouteTree::two_paths() const {
  std::vector<TwoPath> out;
  if (nodes_.empty()) return out;
  auto is_anchor = [&](NodeId n) {
    const RouteNode& node = nodes_[static_cast<std::size_t>(n)];
    return n == root() || node.sink_count > 0 || node.children.size() >= 2 ||
           node.children.empty();
  };
  // Walk down from every anchor until the next anchor.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto head = static_cast<NodeId>(i);
    if (!is_anchor(head)) continue;
    for (const NodeId first : nodes_[i].children) {
      TwoPath tp;
      tp.head = head;
      NodeId cur = first;
      while (!is_anchor(cur)) {
        tp.interior.push_back(cur);
        RABID_ASSERT(nodes_[static_cast<std::size_t>(cur)].children.size() ==
                     1);
        cur = nodes_[static_cast<std::size_t>(cur)].children.front();
      }
      tp.tail = cur;
      out.push_back(std::move(tp));
    }
  }
  return out;
}

void RouteTree::verify(const tile::TileGraph& g) const {
  if (nodes_.empty()) return;
  RABID_ASSERT(nodes_.front().parent == kNoNode);
  RABID_ASSERT(by_tile_.size() == nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const RouteNode& n = nodes_[i];
    RABID_ASSERT_MSG(n.parent != kNoNode, "non-root node without parent");
    RABID_ASSERT_MSG(
        g.edge_between(n.tile,
                       nodes_[static_cast<std::size_t>(n.parent)].tile) !=
            tile::kNoEdge,
        "route arc endpoints not adjacent");
    RABID_ASSERT_MSG(static_cast<std::size_t>(n.parent) < i,
                     "parent index must precede child");
  }
  for (std::size_t i = 1; i < by_tile_.size(); ++i) {
    RABID_ASSERT_MSG(by_tile_[i - 1].first < by_tile_[i].first,
                     "duplicate tile in route tree");
  }
}

}  // namespace rabid::route
