#pragma once

/// \file counters.hpp
/// The observability registry: named monotonic counters and log2-bucket
/// histograms, recorded from any thread, merged on snapshot.
///
/// Design constraints (DESIGN.md section 11):
///
///   * **Zero overhead when off.**  Every record path starts with one
///     relaxed atomic load of the global level; at kOff nothing else
///     happens.  Hot loops (the maze wavefront, the DP kernels)
///     accumulate into plain stack locals and flush once per call, so
///     even at kCounters the inner loops stay untouched.
///
///   * **No contention.**  Each thread writes its own shard — a flat
///     array of relaxed atomics indexed by the Counter/Histogram enums.
///     Shards are registered once per thread under a mutex and never
///     freed, so snapshot() can merge them at any time without
///     coordinating with writers (TSan-clean by construction).
///
///   * **Monotonic.**  Counters only ever grow between reset() calls;
///     a snapshot is a consistent-enough sum for reporting (each slot is
///     read atomically; cross-slot skew is bounded by in-flight work).
///
/// The catalogue is a compile-time enum rather than string keys: a
/// counter costs one array slot, names live in one table, and a typo is
/// a compile error.  See docs/OBSERVABILITY.md for the full catalogue
/// with per-counter semantics.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace rabid::obs {

class TraceWriter;

/// How much the process records (RabidOptions::obs_level mirrors this).
enum class Level : std::uint8_t {
  kOff,       ///< record nothing (the default; near-zero overhead)
  kCounters,  ///< counters + histograms
  kTrace,     ///< counters + chrome-trace events (ScopedTimer active)
};

std::string_view level_name(Level level);
/// Inverse of level_name; false when `name` matches no level.
bool level_from_name(std::string_view name, Level* out);

/// Monotonic counter catalogue.  Grouped by subsystem; the name table
/// in counters.cpp must stay in sync (a static_assert enforces size).
enum class Counter : std::uint16_t {
  // route/maze.cpp — wavefront work in stages 2 and 4.
  kMazeRoutes,        ///< grow() calls (one per net connection pass set)
  kMazeHeapPushes,    ///< wavefront heap insertions
  kMazeHeapPops,      ///< wavefront heap extractions
  kMazeStalePops,     ///< pops discarded because a cheaper label landed
  kMazePrunedTouches, ///< neighbor relaxations rejected (not better)
  // route/maze.cpp — EdgeCostCache.
  kEdgeCacheFullRefreshes,  ///< refresh_all() calls
  kEdgeCacheInvalidations,  ///< single-edge recomputes (refresh_edge)
  kEdgeCacheCapacityChanges,  ///< capacity-aware recomputes (ECO edits)
  // util/dheap.hpp regrow events, flushed by the heap's owners (maze
  // router, two-path search): pushes that forced the backing vector to
  // reallocate.  Nonzero after warm-up means a reserve() is missing.
  kHeapRegrows,
  // core/rabid.cpp — stage-2 dirty-net filter.
  kStage2Iterations,  ///< rip-up/reroute iterations actually run
  kStage2NetsRipped,  ///< nets ripped up and rerouted
  kStage2NetsKept,    ///< nets the dirty filter left untouched
  kStage2DirtyEdges,  ///< edges marked dirty at iteration starts
  // core/rabid.cpp — region-sharded stage 2 (stage2_shards > 0).
  kStage2LocalNets,     ///< nets routed confined inside one region
  kStage2BoundaryNets,  ///< nets routed in the serial boundary pass
  // buffer/insertion.cpp — the stage-3 DP.
  kDpNets,             ///< insert_buffers() calls
  kDpCellsComputed,    ///< C_v/K_w cost-array cells filled
  kDpCellsInfeasible,  ///< cells left at +inf (no candidate survives)
  kDpLimitRelaxations, ///< insert_buffers_relaxed limit doublings
  kDpKernels,          ///< span-kernel invocations (advance/join/min)
  kDpStatesPruned,     ///< dominated (cost, load) candidates dropped
  // core/rabid.cpp — stage-3 speculative parallel batches.
  kStage3SpecHits,    ///< speculated DP results committed as-is
  kStage3SpecMisses,  ///< stale speculations re-run serially
  // core/rabid.cpp — buffer commits against the b(v) book.
  kBuffersCommitted,     ///< add_buffer calls from the flow
  kBuffersRemoved,       ///< remove_buffer calls from the flow
  kBufferCommitRetries,  ///< per-net DP re-runs after oversubscription
  // route/route_tree.cpp — wire commits against the w(e) book.
  kWireUnitsCommitted,  ///< add_wire units from tree commits
  kWireUnitsRemoved,    ///< remove_wire units from tree uncommits
  // core/twopath.cpp — the stage-4 (tile x L) search.
  kTwoPathSearches,    ///< route() calls
  kTwoPathHeapPushes,  ///< (tile, j) state heap insertions
  kTwoPathHeapPops,    ///< (tile, j) state heap extractions
  // util/thread_pool.cpp.
  kPoolTasks,          ///< queue tasks executed by workers
  kPoolParallelFors,   ///< parallel_for() calls
  kPoolIndicesInline,  ///< parallel_for indices run by the calling thread
  kPoolIndicesWorker,  ///< parallel_for indices run by pool workers
  // core/rabid.cpp — cooperative deadlines (RabidOptions::deadline_ms).
  kDeadlineExpirations,    ///< deadlines that actually expired (<= 1/run)
  kDeadlineNetsCancelled,  ///< net-processing steps skipped after expiry
  // core/checkpoint.cpp — stage-granular checkpoint/resume.
  kCheckpointWrites,  ///< stage checkpoints committed (atomic renames)
  kCheckpointLoads,   ///< solutions restored from a checkpoint
  // src/fuzz/faults.cpp — fault-injection harness.
  kFaultsInjected,  ///< hostile mutations / IO faults exercised
  // serve/server.cpp — the rabid_serve planning daemon.
  kServeJobsAccepted,   ///< jobs admitted into the queue
  kServeJobsRejected,   ///< jobs refused (overload, drain, bad request)
  kServeJobsCompleted,  ///< jobs that ran to a full solution
  kServeJobsTimedOut,   ///< jobs whose per-job deadline expired mid-run
  kServeJobsCancelled,  ///< queued jobs cancelled before they started
  // mcf/mcf.cpp — the multicommodity-flow allocator backend.
  kMcfPhases,             ///< fractional price-update phases run
  kMcfOracleRoutes,       ///< per-net buffered-path oracle calls
  kMcfCandidatesKept,     ///< distinct per-net candidates retained
  kMcfRoundingFallbacks,  ///< nets legalized off their rounded choice
  kMcfRepairReroutes,     ///< nets ripped up by the overflow-repair loop
  // eco/incremental.cpp — ECO re-planning (docs/INCREMENTAL.md).
  kEcoReplans,        ///< IncrementalPlanner::replan() calls
  kEcoDirtyNets,      ///< nets in the computed dirty closure (re-planned)
  kEcoNetsKept,       ///< nets outside the closure (solution untouched)
  kEcoCapacityEdits,  ///< W(e)/B(v) book entries edited by perturbations
  // eco/stream.cpp — streaming net ingest (the retry-queue pattern).
  kStreamNetsAdmitted,  ///< nets accepted into a stream session
  kStreamNetsPlanned,   ///< nets planned and committed (incl. retries)
  kStreamNetsParked,    ///< plan attempts parked into the retry queue
  kStreamNetsRetried,   ///< parked nets re-attempted after capacity freed
  kCount,
};

std::string_view counter_name(Counter c);

/// Log2-bucket histogram catalogue (bucket b counts values in
/// [2^(b-1), 2^b), bucket 0 counts zeros).
enum class HistogramId : std::uint16_t {
  kMazePopsPerRoute,  ///< wavefront pops per grow() call
  kDpCellsPerNet,     ///< DP cells per insert_buffers() call
  kPoolQueueDepth,    ///< queue length observed at each enqueue
  kServeQueueDepth,   ///< total job-queue depth observed at each admit
  kCount,
};

std::string_view histogram_name(HistogramId h);

/// High-water-mark gauge catalogue (max-semantics: record() keeps the
/// largest value ever seen since reset()).  All values are bytes; the
/// memory.* gauges are the per-structure answer to "what actually ate
/// the RAM" on a 512x512 run, next to the OS-level peak_rss.
enum class GaugeId : std::uint16_t {
  kPeakRssBytes,        ///< getrusage high-water mark (obs/memory.hpp)
  kTileGraphBytes,      ///< tile::TileGraph books + adjacency tables
  kRouteTreeBytes,      ///< sum of all live per-net route trees
  kEdgeCostCacheBytes,  ///< flat edge-cost arrays (stages 2/4)
  kMazeScratchBytes,    ///< router labels + heap backing (all routers)
  kDpArenaBytes,        ///< stage-3 DP candidate/cost arenas
  kCount,
};

std::string_view gauge_name(GaugeId g);

constexpr std::size_t kHistogramBuckets = 32;

/// A merged view of every shard at one instant.
struct Snapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counters{};
  std::array<std::array<std::uint64_t, kHistogramBuckets>,
             static_cast<std::size_t>(HistogramId::kCount)>
      histograms{};
  std::array<std::uint64_t, static_cast<std::size_t>(GaugeId::kCount)>
      gauges{};

  std::uint64_t operator[](Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const std::array<std::uint64_t, kHistogramBuckets>& operator[](
      HistogramId h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
  std::uint64_t operator[](GaugeId g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
};

/// The process-wide registry.  All members are safe to call from any
/// thread; reset() assumes no flow is concurrently recording (tests and
/// the CLI call it between runs, not during them).
class Registry {
 public:
  static Registry& instance();

  Level level() const { return level_.load(std::memory_order_relaxed); }
  /// Sets the recording level; enables/disables the trace writer.
  void set_level(Level level);
  /// Raises the level if `level` is higher; never lowers it (so a
  /// default-options Rabid constructed mid-run cannot silence an
  /// observed one).
  void raise_level(Level level);

  bool counting() const { return level() >= Level::kCounters; }

  void add(Counter c, std::uint64_t n = 1) {
    if (!counting()) return;
    shard().counters[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  void observe(HistogramId h, std::uint64_t value) {
    if (!counting()) return;
    shard()
        .histograms[static_cast<std::size_t>(h)][bucket_of(value)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Raises the gauge's high-water mark to `value` if larger.  The CAS
  /// loop is uncontended in practice (gauges are recorded at stage
  /// boundaries, not in inner loops).
  void gauge_max(GaugeId g, std::uint64_t value) {
    if (!counting()) return;
    std::atomic<std::uint64_t>& slot =
        shard().gauges[static_cast<std::size_t>(g)];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < value &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Sums every thread's shard.
  Snapshot snapshot() const;

  /// Zeroes all counters/histograms and clears the trace buffer.  The
  /// level is left unchanged.
  void reset();

  /// The chrome-trace event sink (records only at Level::kTrace).
  TraceWriter& trace() { return *trace_; }

  /// Log2 bucket index for a histogram value.
  static std::size_t bucket_of(std::uint64_t value);

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>,
               static_cast<std::size_t>(Counter::kCount)>
        counters{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
               static_cast<std::size_t>(HistogramId::kCount)>
        histograms{};
    std::array<std::atomic<std::uint64_t>,
               static_cast<std::size_t>(GaugeId::kCount)>
        gauges{};
  };

  Registry();
  Shard& shard();

  std::atomic<Level> level_{Level::kOff};
  mutable std::mutex mu_;
  /// Shards live for the life of the process: a worker thread may exit
  /// while a snapshot is being taken, so shards are never reclaimed.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<TraceWriter> trace_;
};

// Free-function shorthands for instrumentation sites.
inline void count(Counter c, std::uint64_t n = 1) {
  Registry::instance().add(c, n);
}
inline void observe(HistogramId h, std::uint64_t value) {
  Registry::instance().observe(h, value);
}
inline void gauge_max(GaugeId g, std::uint64_t value) {
  Registry::instance().gauge_max(g, value);
}
inline bool counting() { return Registry::instance().counting(); }

}  // namespace rabid::obs
