#include "obs/counters.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace rabid::obs {

namespace {

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(Counter::kCount)>
    kCounterNames = {
        "maze.routes",
        "maze.heap_pushes",
        "maze.heap_pops",
        "maze.stale_pops",
        "maze.pruned_touches",
        "edge_cache.full_refreshes",
        "edge_cache.invalidations",
        "edge_cache.capacity_changes",
        "heap.regrows",
        "stage2.iterations",
        "stage2.nets_ripped",
        "stage2.nets_kept",
        "stage2.dirty_edges",
        "stage2.local_nets",
        "stage2.boundary_nets",
        "dp.nets",
        "dp.cells_computed",
        "dp.cells_infeasible",
        "dp.limit_relaxations",
        "dp.kernels",
        "dp.states_pruned",
        "stage3.spec_hits",
        "stage3.spec_misses",
        "buffers.committed",
        "buffers.removed",
        "buffers.commit_retries",
        "wire.units_committed",
        "wire.units_removed",
        "twopath.searches",
        "twopath.heap_pushes",
        "twopath.heap_pops",
        "pool.tasks",
        "pool.parallel_fors",
        "pool.indices_inline",
        "pool.indices_worker",
        "deadline.expirations",
        "deadline.nets_cancelled",
        "checkpoint.writes",
        "checkpoint.loads",
        "faults.injected",
        "serve.jobs_accepted",
        "serve.jobs_rejected",
        "serve.jobs_completed",
        "serve.jobs_timed_out",
        "serve.jobs_cancelled",
        "mcf.phases",
        "mcf.oracle_routes",
        "mcf.candidates_kept",
        "mcf.rounding_fallbacks",
        "mcf.repair_reroutes",
        "eco.replans",
        "eco.dirty_nets",
        "eco.nets_kept",
        "eco.capacity_edits",
        "stream.nets_admitted",
        "stream.nets_planned",
        "stream.nets_parked",
        "stream.nets_retried",
};

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(HistogramId::kCount)>
    kHistogramNames = {
        "maze.pops_per_route",
        "dp.cells_per_net",
        "pool.queue_depth",
        "serve.queue_depth",
};

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(GaugeId::kCount)>
    kGaugeNames = {
        "memory.peak_rss_bytes",
        "memory.tile_graph_bytes",
        "memory.route_tree_bytes",
        "memory.edge_cost_cache_bytes",
        "memory.maze_scratch_bytes",
        "memory.dp_arena_bytes",
};

}  // namespace

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kOff: return "off";
    case Level::kCounters: return "counters";
    case Level::kTrace: return "trace";
  }
  return "off";
}

bool level_from_name(std::string_view name, Level* out) {
  for (const Level l : {Level::kOff, Level::kCounters, Level::kTrace}) {
    if (name == level_name(l)) {
      *out = l;
      return true;
    }
  }
  return false;
}

std::string_view counter_name(Counter c) {
  RABID_ASSERT(c < Counter::kCount);
  return kCounterNames[static_cast<std::size_t>(c)];
}

std::string_view histogram_name(HistogramId h) {
  RABID_ASSERT(h < HistogramId::kCount);
  return kHistogramNames[static_cast<std::size_t>(h)];
}

std::string_view gauge_name(GaugeId g) {
  RABID_ASSERT(g < GaugeId::kCount);
  return kGaugeNames[static_cast<std::size_t>(g)];
}

Registry::Registry() : trace_(std::make_unique<TraceWriter>()) {}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::set_level(Level level) {
  level_.store(level, std::memory_order_relaxed);
  trace_->set_enabled(level == Level::kTrace);
}

void Registry::raise_level(Level level) {
  if (level > this->level()) set_level(level);
}

std::size_t Registry::bucket_of(std::uint64_t value) {
  // bit_width(v) = 1 + floor(log2(v)) for v > 0, and 0 for v == 0, so
  // bucket 0 holds zeros and bucket b holds [2^(b-1), 2^b).
  const auto b = static_cast<std::size_t>(std::bit_width(value));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

Registry::Shard& Registry::shard() {
  // One shard per (thread, process) pair, registered on first use.  The
  // raw pointer stays valid after reset(): reset zeroes values in
  // place, it never swaps the shard out.
  thread_local Shard* tls = nullptr;
  if (tls == nullptr) {
    auto owned = std::make_unique<Shard>();
    tls = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  return *tls;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Shard>& s : shards_) {
    for (std::size_t c = 0; c < out.counters.size(); ++c) {
      out.counters[c] += s->counters[c].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < out.histograms.size(); ++h) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.histograms[h][b] +=
            s->histograms[h][b].load(std::memory_order_relaxed);
      }
    }
    for (std::size_t g = 0; g < out.gauges.size(); ++g) {
      // Gauges are high-water marks: the merged view is the max across
      // shards, not the sum.
      out.gauges[g] = std::max(out.gauges[g],
                               s->gauges[g].load(std::memory_order_relaxed));
    }
  }
  return out;
}

void Registry::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Shard>& s : shards_) {
      for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
      for (auto& h : s->histograms) {
        for (auto& b : h) b.store(0, std::memory_order_relaxed);
      }
      for (auto& g : s->gauges) g.store(0, std::memory_order_relaxed);
    }
  }
  trace_->clear();
}

}  // namespace rabid::obs
