#include "obs/memory.hpp"

#include "obs/counters.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rabid::obs {

std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  // ru_maxrss is bytes on Darwin.
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#elif defined(__unix__)
  // ru_maxrss is kilobytes on Linux and the BSDs.
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024U;
#else
  return 0;
#endif
}

void record_peak_rss() { gauge_max(GaugeId::kPeakRssBytes, peak_rss_bytes()); }

}  // namespace rabid::obs
