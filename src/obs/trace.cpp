#include "obs/trace.hpp"

#include <ostream>

#include "obs/counters.hpp"

namespace rabid::obs {

namespace {

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

TraceWriter::TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}

double TraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t TraceWriter::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceWriter::complete(std::string name, const char* category,
                           double ts_us, double dur_us) {
  if (!enabled()) return;
  const std::uint32_t tid = thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({std::move(name), category, ts_us, dur_us, tid, 'X'});
}

void TraceWriter::instant(std::string name, const char* category) {
  if (!enabled()) return;
  const std::uint32_t tid = thread_id();
  const double ts = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({std::move(name), category, ts, 0.0, tid, 'i'});
}

void TraceWriter::set_thread_name(std::string name) {
  const std::uint32_t tid = thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, existing_name] : thread_names_) {
    if (existing == tid) {
      existing_name = std::move(name);
      return;
    }
  }
  thread_names_.emplace_back(tid, std::move(name));
}

std::size_t TraceWriter::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceWriter::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceWriter::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

void TraceWriter::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Microsecond timestamps of a minutes-long run need more than the
  // default 6 significant digits to stay distinct.
  const auto precision = out.precision(15);
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [tid, name] : thread_names_) {
    out << (first ? "\n" : ",\n")
        << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": "
        << tid << ", \"args\": {\"name\": \"";
    json_escape(out, name);
    out << "\"}}";
    first = false;
  }
  for (const Event& e : events_) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \"";
    json_escape(out, e.name);
    out << "\", \"cat\": \"" << e.category << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": 0, \"tid\": " << e.tid << ", \"ts\": " << e.ts_us;
    if (e.phase == 'X') out << ", \"dur\": " << e.dur_us;
    if (e.phase == 'i') out << ", \"s\": \"t\"";
    out << "}";
    first = false;
  }
  out << (first ? "]" : "\n]") << ",\n\"displayTimeUnit\": \"ms\""
      << ",\n\"droppedEvents\": " << dropped_ << "\n}\n";
  out.precision(precision);
}

ScopedTimer::ScopedTimer(std::string name, const char* category)
    : name_(std::move(name)), category_(category) {
  TraceWriter& trace = Registry::instance().trace();
  active_ = trace.enabled();
  if (active_) start_us_ = trace.now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  TraceWriter& trace = Registry::instance().trace();
  const double end = trace.now_us();
  trace.complete(std::move(name_), category_, start_us_, end - start_us_);
}

}  // namespace rabid::obs
