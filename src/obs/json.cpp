#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace rabid::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool Value::as_bool() const {
  RABID_ASSERT_MSG(type == Type::kBool, "JSON value is not a bool");
  return boolean;
}

double Value::as_number() const {
  RABID_ASSERT_MSG(type == Type::kNumber, "JSON value is not a number");
  return number;
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Value::as_string() const {
  RABID_ASSERT_MSG(type == Type::kString, "JSON value is not a string");
  return string;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value root;
    if (!parse_value(root) || !at_end()) {
      if (error != nullptr) {
        *error = ok_ ? "trailing characters after document" : message_;
        *error += " (at byte " + std::to_string(pos_) + ")";
      }
      return std::nullopt;
    }
    return root;
  }

 private:
  bool fail(const char* message) {
    if (ok_) message_ = message;
    ok_ = false;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.type = Value::Type::kString; return parse_string(out.string);
      case 't': out.type = Value::Type::kBool; out.boolean = true;
                return literal("true");
      case 'f': out.type = Value::Type::kBool; out.boolean = false;
                return literal("false");
      case 'n': out.type = Value::Type::kNull; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      if (!consume(':')) return fail("expected ':' after key");
      Value value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    if (consume(']')) return true;
    for (;;) {
      Value value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<unsigned>(h - 'A' + 10);
      else
        return fail("bad \\u escape digit");
    }
    return true;
  }

  /// Shortest-form UTF-8 for one scalar value (surrogates were already
  /// rejected or combined, so 0..0x10FFFF minus the surrogate gap).
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // A high surrogate is only meaningful as the first half of
            // a pair; combine it with the mandatory low half.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("high surrogate not followed by a \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out.type = Value::Type::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  const char* message_ = "";
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump(const Value& value, std::string& out) {
  switch (value.type) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case Value::Type::kNumber: {
      // Integers (the common case: counters, ids) print exactly;
      // everything else gets enough digits to round-trip.
      const double v = value.number;
      char buf[32];
      if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
      } else if (std::isfinite(v)) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
      } else {
        // JSON has no inf/nan; mirror the RunReport writer's quoting.
        std::snprintf(buf, sizeof(buf), "\"%s\"",
                      v > 0 ? "inf" : (v < 0 ? "-inf" : "nan"));
      }
      out += buf;
      break;
    }
    case Value::Type::kString:
      append_escaped(out, value.string);
      break;
    case Value::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& item : value.items) {
        if (!first) out.push_back(',');
        first = false;
        dump(item, out);
      }
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, key);
        out.push_back(':');
        dump(member, out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string dump(const Value& value) {
  std::string out;
  dump(value, out);
  return out;
}

}  // namespace rabid::obs::json
