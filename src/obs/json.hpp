#pragma once

/// \file json.hpp
/// A minimal recursive-descent JSON parser — just enough to read back
/// what the observability layer writes (RunReport, audit reports,
/// chrome traces) for round-trip tests and tooling, with no external
/// dependency.
///
/// Supported: the full JSON grammar (objects, arrays, strings with the
/// common escapes, numbers, true/false/null).  \uXXXX escapes decode to
/// shortest-form UTF-8, including surrogate pairs; lone or mis-ordered
/// surrogate halves are rejected.  Parsing is strict: trailing garbage,
/// unterminated literals, and bad escapes all fail with a
/// position-stamped error message.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rabid::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                            ///< kArray
  std::vector<std::pair<std::string, Value>> members;  ///< kObject

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Typed accessors: assert on type mismatch (callers check first or
  /// accept the abort — these back tests and CLIs, not servers).
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
};

/// Parses a complete JSON document.  On failure returns nullopt and,
/// when `error` is non-null, stores a human-readable message with the
/// byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Appends a string literal (quotes + escapes) to `out`.  Control
/// characters become \uXXXX; the output re-parses to exactly `s`.
void append_escaped(std::string& out, std::string_view s);

/// Serializes `value` compactly (no whitespace, no newlines) — the
/// single-line form the serving protocol needs for NDJSON framing.
/// dump(parse(dump(v))) is a fixed point; numbers print with enough
/// digits to round-trip a double.
void dump(const Value& value, std::string& out);
std::string dump(const Value& value);

}  // namespace rabid::obs::json
