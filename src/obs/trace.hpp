#pragma once

/// \file trace.hpp
/// Chrome-trace (about://tracing, Perfetto) event recording.
///
/// TraceWriter buffers "complete" (ph "X") duration events plus thread
/// metadata and serializes them in the Trace Event Format that
/// https://ui.perfetto.dev loads directly.  Recording is mutex-guarded
/// and only happens at obs::Level::kTrace — tracing is a diagnosis
/// mode, not a production mode, so a lock per event is acceptable and
/// keeps the writer trivially TSan-clean.
///
/// ScopedTimer is the one-liner instrumentation point:
///
///   { obs::ScopedTimer t("stage2"); run(); }   // one "X" event
///
/// Timestamps are microseconds since the writer's epoch (construction
/// or the last clear()), on the steady clock.  Thread ids are small
/// dense integers assigned on first use; name threads for the viewer
/// via set_thread_name().
///
/// The buffer is capped (kMaxEvents); events past the cap are counted
/// and reported in the JSON as "droppedEvents" instead of growing
/// without bound on a runaway run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rabid::obs {

class TraceWriter {
 public:
  static constexpr std::size_t kMaxEvents = 1u << 20;

  TraceWriter();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since the epoch, on the steady clock.
  double now_us() const;

  /// Records a ph "X" (complete) event on the calling thread's track.
  void complete(std::string name, const char* category, double ts_us,
                double dur_us);
  /// Records a ph "i" (instant) event at now.
  void instant(std::string name, const char* category);

  /// Names the calling thread's track (recorded even when disabled, so
  /// pool workers started before tracing was enabled still get names).
  void set_thread_name(std::string name);

  std::size_t event_count() const;
  std::size_t dropped_count() const;

  /// Drops all buffered events and restarts the epoch.
  void clear();

  /// Serializes {"traceEvents": [...], ...} — valid chrome-trace JSON.
  void write_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    const char* category;
    double ts_us;
    double dur_us;
    std::uint32_t tid;
    char phase;
  };

  static std::uint32_t thread_id();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII complete-event recorder; inert unless the registry is tracing
/// when the timer is constructed.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, const char* category = "flow");
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  const char* category_;
  double start_us_ = 0.0;
  bool active_;
};

}  // namespace rabid::obs
