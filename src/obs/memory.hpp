#pragma once

/// \file memory.hpp
/// Process-level memory probes for the scaling work (ROADMAP item 5).
///
/// peak_rss_bytes() is the OS's answer to "how much physical memory did
/// this process ever hold" — the number a 1M-net run is judged by.  The
/// per-structure memory.* gauges (counters.hpp) attribute that peak to
/// the flow's own data structures; the gap between their sum and the RSS
/// is allocator slack plus code/stack, which is itself worth watching.

#include <cstdint>

namespace rabid::obs {

/// The process's peak resident set size in bytes (getrusage's high-water
/// mark); 0 where the platform offers no probe.  Monotonic over the
/// process lifetime — it never decreases, even across Registry::reset().
std::uint64_t peak_rss_bytes();

/// Records peak_rss_bytes() into GaugeId::kPeakRssBytes (no-op at
/// Level::kOff, like every gauge).  Call at stage boundaries.
void record_peak_rss();

}  // namespace rabid::obs
