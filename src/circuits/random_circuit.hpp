#pragma once

/// \file random_circuit.hpp
/// Seeded random workloads beyond the ten Table-I circuits.
///
/// The published benchmarks exercise ten points of the input space; the
/// fuzzed differential harness (fuzz/differential.hpp) and the
/// randomized determinism tests need *hundreds* of structurally diverse
/// instances.  A RandomCircuit derives a complete CircuitSpec — cells,
/// nets, pads, sinks, grid, tile area, L_i, buffer sites — plus tiling
/// options from a single 64-bit seed, then reuses the Table-I generator
/// machinery verbatim, so every random instance goes through exactly the
/// code paths the real workloads do.
///
/// Determinism: the same (seed, options) always produces the same
/// design and tile graph, on every platform (util::Rng is PCG32 with
/// portable mappings), which is what lets a fuzz failure be replayed
/// from nothing but its seed.

#include <cstdint>
#include <string>

#include "circuits/generator.hpp"
#include "circuits/specs.hpp"
#include "netlist/design.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::circuits {

/// Bounds for random instance generation.  The defaults keep instances
/// small enough that a full four-stage flow runs in milliseconds —
/// fuzzing wants many instances more than it wants big ones.
struct RandomCircuitOptions {
  std::int32_t min_cells = 3;
  std::int32_t max_cells = 9;
  std::int32_t min_nets = 4;
  std::int32_t max_nets = 28;
  /// Extra sinks beyond the mandatory one per net, as a fraction of the
  /// net count (drawn uniformly in [0, max]).
  double max_extra_sink_factor = 1.5;
  std::int32_t min_grid = 6;    ///< per-axis tile count
  std::int32_t max_grid = 14;
  double min_tile_side_um = 90.0;
  double max_tile_side_um = 220.0;
  std::int32_t min_length_limit = 3;
  std::int32_t max_length_limit = 8;
  /// Buffer-site supply as sites-per-tile, drawn in [min, max].
  double min_sites_per_tile = 1.0;
  double max_sites_per_tile = 4.0;
  /// Wire capacity calibration target (TilingOptions); lower = more
  /// headroom, so the flow reliably reaches w(e) <= W(e).
  double target_avg_congestion = 0.2;
  /// Allow a blocked no-site region of up to min(grid)/3 tiles a side.
  bool allow_blocked_region = true;
};

/// A deterministic random circuit: spec + tiling derived from `seed`.
/// Non-copyable: CircuitSpec::name is a string_view into the owned
/// name, so moving the wrapper would dangle it.
class RandomCircuit {
 public:
  explicit RandomCircuit(std::uint64_t seed,
                         const RandomCircuitOptions& options = {});
  RandomCircuit(const RandomCircuit&) = delete;
  RandomCircuit& operator=(const RandomCircuit&) = delete;

  std::uint64_t seed() const { return seed_; }
  const std::string& name() const { return name_; }
  const CircuitSpec& spec() const { return spec_; }
  const TilingOptions& tiling() const { return tiling_; }

  /// The instance's netlist (deterministic in the seed).
  netlist::Design design() const { return generate_design(spec_); }
  /// A fresh tile graph for `design` (usage books empty).
  tile::TileGraph graph(const netlist::Design& d) const {
    return build_tile_graph(d, spec_, tiling_);
  }

 private:
  std::uint64_t seed_;
  std::string name_;
  CircuitSpec spec_;
  TilingOptions tiling_;
};

}  // namespace rabid::circuits
