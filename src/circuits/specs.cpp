#include "circuits/specs.hpp"

#include <array>
#include <cmath>

#include "util/assert.hpp"

namespace rabid::circuits {

namespace {

// Table I, verbatim.
constexpr std::array<CircuitSpec, 10> kSpecs{{
    // name     cbl    cells nets  pads sinks gx  gy  tile   L  sites  %area
    {"apte",    true,    9,   77,  73,  141, 30, 33, 0.36, 6,  1200, 0.13},
    {"xerox",   true,   10,  171,   2,  390, 30, 30, 0.35, 5,  3000, 0.38},
    {"hp",      true,   11,   68,  45,  187, 30, 30, 0.42, 6,  2350, 0.25},
    {"ami33",   true,   33,  112,  43,  324, 33, 30, 0.46, 5,  2750, 0.24},
    {"ami49",   true,   49,  368,  22,  493, 30, 30, 0.67, 5, 11450, 0.75},
    {"playout", true,   62, 1294, 192, 1663, 33, 30, 0.75, 6, 27550, 1.47},
    {"ac3",     false,  27,  200,  75,  409, 30, 30, 0.49, 6,  3550, 0.32},
    {"xc5",     false,  50,  975,   2, 2149, 30, 30, 0.54, 6, 13550, 1.11},
    {"hc7",     false,  77,  430,  51, 1318, 30, 30, 1.04, 5,  7780, 0.33},
    {"a9c3",    false, 147, 1148,  22, 1526, 30, 30, 1.08, 5, 12780, 0.52},
}};

// The synthetic scale family (ROADMAP item 5): Rent's-rule-flavored
// generated circuits 100x-10000x beyond Table I, smallest first.  The
// %area column is pct_chip_area(spec, sites) rounded; sink counts are
// 2.2x nets (the Table-I average fanout is ~2.4); L=8 with ~100 um
// tiles keeps the buffer problem real without drowning the grids in
// sites.  scale1m uses smaller tiles so the 512x512 chip stays ~30 mm.
constexpr std::array<CircuitSpec, 5> kScaleSpecs{{
    // name      cbl  cells  nets     pads sinks    gx   gy   tile     L  sites   %area scale
    {"scale10k",  false,  64,   10000, 0,   22000, 128, 128, 0.0100, 8,    7500, 1.83, true},
    {"scale30k",  false, 128,   30000, 0,   66000, 192, 192, 0.0100, 8,   22500, 2.44, true},
    {"scale100k", false, 256,  100000, 0,  220000, 256, 256, 0.0100, 8,   75000, 4.58, true},
    {"scale300k", false, 256,  300000, 0,  660000, 256, 256, 0.0100, 8,  225000, 13.7, true},
    {"scale1m",   false, 512, 1000000, 0, 2200000, 512, 512, 0.0036, 8,  750000, 31.8, true},
}};

// Table III: small / medium / large available-buffer-site sweeps.
constexpr std::array<SiteSweep, 6> kSiteSweeps{{
    {"apte", 280, 700, 3200},
    {"xerox", 600, 1300, 3000},
    {"hp", 300, 600, 2350},
    {"ami33", 500, 850, 2750},
    {"ami49", 850, 1650, 11450},
    {"playout", 3250, 6250, 27550},
}};

}  // namespace

double CircuitSpec::chip_width_um() const {
  const double side_um = std::sqrt(tile_area_mm2) * 1000.0;
  return side_um * grid_x;
}

double CircuitSpec::chip_height_um() const {
  const double side_um = std::sqrt(tile_area_mm2) * 1000.0;
  return side_um * grid_y;
}

std::span<const CircuitSpec> table1_specs() { return kSpecs; }

std::span<const CircuitSpec> scale_specs() { return kScaleSpecs; }

const CircuitSpec* find_spec(std::string_view name) {
  for (const CircuitSpec& s : kSpecs) {
    if (s.name == name) return &s;
  }
  for (const CircuitSpec& s : kScaleSpecs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const CircuitSpec& spec_by_name(std::string_view name) {
  const CircuitSpec* spec = find_spec(name);
  RABID_ASSERT_MSG(spec != nullptr, "unknown benchmark circuit name");
  return *spec;
}

std::span<const SiteSweep> table3_site_sweeps() { return kSiteSweeps; }

}  // namespace rabid::circuits
