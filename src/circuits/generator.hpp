#pragma once

/// \file generator.hpp
/// Deterministic workload generation for the ten Table I circuits.
///
/// generate_design() builds the floorplan + netlist (blocks, pads, nets,
/// sinks — all counts exactly as published); build_tile_graph() lays the
/// tiling over it, sprinkles the buffer sites (with the paper's random
/// 9x9-tile blocked "cache" region), and calibrates the uniform wire
/// capacity W(e) from an HPWL demand estimate.
///
/// Site area: the Table I "%chip area" column is consistent with one
/// buffer site occupying 400 um^2 across all ten circuits (e.g. xc5:
/// 13550 sites x 400 um^2 / 486 mm^2 = 1.11%); we adopt that constant to
/// reproduce the column and to measure MTAP in Table V.

#include <cstdint>

#include "circuits/specs.hpp"
#include "netlist/design.hpp"
#include "tile/sites.hpp"
#include "tile/tile_graph.hpp"

namespace rabid::circuits {

/// Physical area of one buffer site (see file comment).
constexpr double kBufferSiteAreaUm2 = 400.0;

/// Builds the named circuit's floorplan and netlist from its spec.
/// Deterministic: same spec -> same design, independent of call order.
netlist::Design generate_design(const CircuitSpec& spec);

/// Optional workload variations layered on top of the base generator.
struct DesignVariations {
  /// Fraction of nets promoted to thick/high metal layers.  Footnote 4:
  /// "if some nets can be routed on higher metal layers while others
  /// cannot, different nets can have different L_i values. Also, a
  /// larger value of L_i can be used in conjunction with wider wire
  /// width assignment" — promoted nets get
  /// length_limit = round(thick_metal_scale x default L) and the given
  /// wire width class.
  double thick_metal_fraction = 0.0;
  double thick_metal_scale = 1.5;
  std::int32_t thick_metal_width = 2;
};

/// generate_design() plus variations.  Uses separate random streams, so
/// the base netlist is bit-identical to the unvaried generator.
netlist::Design generate_design(const CircuitSpec& spec,
                                const DesignVariations& var);

struct TilingOptions {
  std::int32_t nx = 0;        ///< 0 = spec default grid
  std::int32_t ny = 0;
  std::int64_t buffer_sites = -1;  ///< -1 = spec default count
  /// Side of the blocked no-site region, in *default-grid* tiles; the
  /// region is fixed physically so Table III/IV sweeps block the same
  /// silicon (9 per Section IV-A; 0 disables).
  std::int32_t blocked_span = 9;
  /// Wire-capacity calibration: W(e) is uniform, sized so the expected
  /// HPWL demand would average this congestion.  0 = the spec default:
  /// 0.25 for the Table-I circuits (the paper's comfortable regime),
  /// 0.55 for the scale family — tight enough that stage 1 leaves real
  /// localized overflow and stage 2 has genuine rip-up work at 100k-1M
  /// nets, loose enough that it always resolves to w(e) <= W(e).
  double target_avg_congestion = 0.0;
  /// Capacity multiplier for edges whose both endpoints lie under a
  /// macro block (global tracks over macros are scarcer than over
  /// channels; 1.0 = the paper's uniform model).  Lower values
  /// concentrate routing in the channels — the regime where buffer-block
  /// planning's congestion problem bites hardest.
  double over_block_capacity_factor = 1.0;
};

/// Lays a tiling over `design` per `opt`, distributing buffer sites and
/// setting wire capacities.  Deterministic in (spec, opt).
tile::TileGraph build_tile_graph(const netlist::Design& design,
                                 const CircuitSpec& spec,
                                 const TilingOptions& opt = {});

/// %chip-area occupied by `sites` buffer sites (Table I last column).
double pct_chip_area(const CircuitSpec& spec, std::int64_t sites);

/// Physical site locations backing a tile graph's supplies: B(v) points
/// uniform within each tile (deterministic per circuit; independent of
/// how the supplies were chosen, so it matches any sweep's graph).
tile::SiteMap generate_site_map(const CircuitSpec& spec,
                                const tile::TileGraph& g);

}  // namespace rabid::circuits
