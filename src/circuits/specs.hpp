#pragma once

/// \file specs.hpp
/// The ten benchmark circuits of Table I.
///
/// The originals are the six CBL/MCNC floorplans (apte, xerox, hp, ami33,
/// ami49, playout) plus four randomly generated circuits (ac3, xc5, hc7,
/// a9c3) obtained from Cong et al. [8].  Those files are not distributed;
/// we regenerate workloads with *exactly* the published statistics —
/// cells, nets, pads, sinks, grid size, tile area, L_i, and buffer-site
/// count — from a deterministic per-circuit seed (see generator.hpp and
/// the substitution note in DESIGN.md).

#include <cstdint>
#include <span>
#include <string_view>

namespace rabid::circuits {

struct CircuitSpec {
  std::string_view name;
  bool cbl = true;            ///< CBL benchmark vs random circuit
  std::int32_t cells = 0;     ///< macro block count
  std::int32_t nets = 0;      ///< global net count
  std::int32_t pads = 0;      ///< I/O pad count
  std::int32_t sinks = 0;     ///< total sink pins over all nets
  std::int32_t grid_x = 0;    ///< default tiling (Table I "grid size")
  std::int32_t grid_y = 0;
  double tile_area_mm2 = 0.0; ///< area of one default tile
  std::int32_t length_limit = 0;  ///< L_i in tiles
  std::int32_t buffer_sites = 0;  ///< total sites at the default tiling
  double pct_chip_area = 0.0;     ///< Table I's "%chip area" column
  /// True for the synthetic "scale" family (scale10k .. scale1m): nets
  /// are generated with a Rent's-rule-flavored locality distribution
  /// instead of the Table-I block-boundary model (see generator.cpp),
  /// sized 100x-10000x beyond the published benchmarks.
  bool scale = false;

  /// Chip dimensions implied by grid size x tile area (tiles are square
  /// at the default tiling; Table I: "each tile was roughly square").
  double chip_width_um() const;
  double chip_height_um() const;
};

/// All ten circuits, in Table I order.
std::span<const CircuitSpec> table1_specs();

/// The synthetic scale family (ROADMAP item 5): 10k-1M-net generated
/// circuits on 128x128 .. 512x512 grids, smallest first.  Reached by
/// name through find_spec like any Table-I circuit, so the CLI, the
/// serving daemon, and the benches all address them uniformly.
std::span<const CircuitSpec> scale_specs();

/// Lookup by name across Table I *and* the scale family; nullptr if
/// unknown (callers that can report errors — the CLI — use this instead
/// of the asserting variant below).
const CircuitSpec* find_spec(std::string_view name);

/// Lookup by name; aborts if unknown.
const CircuitSpec& spec_by_name(std::string_view name);

/// Table III's small/medium/large buffer-site counts for the six CBL
/// circuits (large == the Table I value).
struct SiteSweep {
  std::string_view name;
  std::int32_t small = 0;
  std::int32_t medium = 0;
  std::int32_t large = 0;
};
std::span<const SiteSweep> table3_site_sweeps();

}  // namespace rabid::circuits
