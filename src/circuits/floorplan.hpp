#pragma once

/// \file floorplan.hpp
/// A deterministic slicing floorplanner.
///
/// The paper's floorplans came from Cong et al.'s simulated-annealing
/// buffer-block planner with the buffer blocks stripped out; what RABID
/// actually consumes is just "a handful of large macros covering most of
/// the die, with channels between them".  We reproduce that shape with a
/// recursive balanced-bipartition slicing tree: block area weights are
/// drawn lognormally from the circuit seed, the die is cut recursively
/// (alternating direction, weight-balanced), and each room is shrunk by
/// a channel margin.

#include <vector>

#include "geom/rect.hpp"
#include "util/rng.hpp"

namespace rabid::circuits {

struct FloorplanOptions {
  /// Linear shrink applied to each room to create routing channels.
  double block_fill = 0.88;
  /// Lognormal sigma of block-area weights (0 = equal-size blocks).
  double area_sigma = 0.7;
};

/// Floorplans `count` macro blocks inside `die`.  Returns one rectangle
/// per block; blocks are pairwise disjoint and inside the die.
std::vector<geom::Rect> slicing_floorplan(const geom::Rect& die,
                                          std::int32_t count,
                                          util::Rng& rng,
                                          const FloorplanOptions& opt = {});

}  // namespace rabid::circuits
