#include "circuits/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "util/assert.hpp"

namespace rabid::circuits {

namespace {

/// Splits weights[lo, hi) into a prefix/suffix with nearly equal sums.
std::size_t balanced_split(std::span<const double> weights, std::size_t lo,
                           std::size_t hi) {
  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) total += weights[i];
  double acc = 0.0;
  for (std::size_t i = lo; i + 1 < hi; ++i) {
    acc += weights[i];
    if (acc * 2.0 >= total) return i + 1;
  }
  return hi - 1;
}

void slice(const geom::Rect& room, std::span<const double> weights,
           std::size_t lo, std::size_t hi, bool vertical_cut,
           std::vector<geom::Rect>& rooms) {
  if (hi - lo == 1) {
    rooms[lo] = room;
    return;
  }
  const std::size_t mid = balanced_split(weights, lo, hi);
  double w_lo = 0.0, w_hi = 0.0;
  for (std::size_t i = lo; i < mid; ++i) w_lo += weights[i];
  for (std::size_t i = mid; i < hi; ++i) w_hi += weights[i];
  const double frac = w_lo / (w_lo + w_hi);
  // Cut the longer dimension to keep rooms roughly square.
  const bool cut_vertically =
      room.width() == room.height() ? vertical_cut
                                    : room.width() > room.height();
  if (cut_vertically) {
    const double x = room.lo().x + room.width() * frac;
    slice(geom::Rect{room.lo(), {x, room.hi().y}}, weights, lo, mid,
          !cut_vertically, rooms);
    slice(geom::Rect{{x, room.lo().y}, room.hi()}, weights, mid, hi,
          !cut_vertically, rooms);
  } else {
    const double y = room.lo().y + room.height() * frac;
    slice(geom::Rect{room.lo(), {room.hi().x, y}}, weights, lo, mid,
          !cut_vertically, rooms);
    slice(geom::Rect{{room.lo().x, y}, room.hi()}, weights, mid, hi,
          !cut_vertically, rooms);
  }
}

}  // namespace

std::vector<geom::Rect> slicing_floorplan(const geom::Rect& die,
                                          std::int32_t count, util::Rng& rng,
                                          const FloorplanOptions& opt) {
  RABID_ASSERT(count >= 1);
  RABID_ASSERT(opt.block_fill > 0.0 && opt.block_fill <= 1.0);

  // Lognormal-ish area weights via a sum of uniforms (Irwin-Hall gives an
  // approximately normal exponent; exact distribution shape is
  // irrelevant, only "a few big blocks, many medium ones").
  std::vector<double> weights(static_cast<std::size_t>(count));
  for (double& w : weights) {
    double z = 0.0;
    for (int k = 0; k < 6; ++k) z += rng.uniform() - 0.5;  // ~N(0, 1/sqrt2)
    w = std::exp(opt.area_sigma * z * std::sqrt(2.0));
  }
  // Big blocks first so they end up in the early (large) rooms.
  std::sort(weights.begin(), weights.end(), std::greater<>());

  std::vector<geom::Rect> rooms(static_cast<std::size_t>(count));
  slice(die, weights, 0, weights.size(), rng.chance(0.5), rooms);

  // Shrink each room around its center to create channels.
  std::vector<geom::Rect> blocks;
  blocks.reserve(rooms.size());
  for (const geom::Rect& room : rooms) {
    const double w = room.width() * opt.block_fill;
    const double h = room.height() * opt.block_fill;
    const geom::Point c = room.center();
    blocks.push_back(
        geom::Rect{{c.x - w / 2.0, c.y - h / 2.0}, {c.x + w / 2.0, c.y + h / 2.0}});
  }
  return blocks;
}

}  // namespace rabid::circuits
