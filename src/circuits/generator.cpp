#include "circuits/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "circuits/floorplan.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rabid::circuits {

namespace {

/// A point on a block's boundary: random side, random offset.
geom::Point boundary_point(const geom::Rect& r, util::Rng& rng) {
  const double t = rng.uniform();
  switch (rng.uniform_int(0, 3)) {
    case 0: return {r.lo().x + t * r.width(), r.lo().y};   // south
    case 1: return {r.lo().x + t * r.width(), r.hi().y};   // north
    case 2: return {r.lo().x, r.lo().y + t * r.height()};  // west
    default: return {r.hi().x, r.lo().y + t * r.height()}; // east
  }
}

/// Evenly spaced pad locations around the die periphery (with jitter),
/// nudged inward so they map to boundary tiles cleanly.
std::vector<geom::Point> pad_ring(const geom::Rect& die, std::int32_t count,
                                  util::Rng& rng) {
  std::vector<geom::Point> pads;
  pads.reserve(static_cast<std::size_t>(count));
  const double w = die.width();
  const double h = die.height();
  const double perimeter = 2.0 * (w + h);
  const double inset = std::min(w, h) * 1e-3;
  const double start = rng.uniform() * perimeter;
  for (std::int32_t i = 0; i < count; ++i) {
    const double jitter = (rng.uniform() - 0.5) * 0.5;
    double d = std::fmod(
        start + (static_cast<double>(i) + jitter + 0.5) * perimeter /
                    static_cast<double>(count),
        perimeter);
    geom::Point p;
    if (d < w) {
      p = {die.lo().x + d, die.lo().y + inset};
    } else if (d < w + h) {
      p = {die.hi().x - inset, die.lo().y + (d - w)};
    } else if (d < 2.0 * w + h) {
      p = {die.hi().x - (d - w - h), die.hi().y - inset};
    } else {
      p = {die.lo().x + inset, die.hi().y - (d - 2.0 * w - h)};
    }
    p.x = std::clamp(p.x, die.lo().x, die.hi().x);
    p.y = std::clamp(p.y, die.lo().y, die.hi().y);
    pads.push_back(p);
  }
  return pads;
}

/// Partitions `total_sinks` over `nets` nets: every net gets one sink,
/// extras are spread with a heavy tail (half uniformly, half onto nets
/// that already fan out) so a few bus-like nets emerge, as in the MCNC
/// netlists.
std::vector<std::int32_t> sink_counts(std::int32_t nets,
                                      std::int32_t total_sinks,
                                      util::Rng& rng) {
  RABID_ASSERT(total_sinks >= nets);
  std::vector<std::int32_t> counts(static_cast<std::size_t>(nets), 1);
  std::vector<std::int32_t> fat;  // nets with >= 2 sinks
  for (std::int32_t extra = total_sinks - nets; extra > 0; --extra) {
    std::size_t pick;
    if (!fat.empty() && rng.chance(0.5)) {
      pick = static_cast<std::size_t>(
          fat[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(fat.size()) - 1))]);
    } else {
      pick = static_cast<std::size_t>(rng.uniform_int(0, nets - 1));
    }
    if (counts[pick] == 1) fat.push_back(static_cast<std::int32_t>(pick));
    ++counts[pick];
  }
  return counts;
}

/// The scale-family netlist model: sources uniform over the die, sinks
/// at Pareto-distributed distances (Rent's-rule-flavored locality — most
/// connections span a few tiles, a heavy tail crosses many), plus a
/// small fraction of chip-spanning "global" nets.  All pins are free-
/// standing points: at 10^5-10^6 nets the block-boundary model of the
/// Table-I generator adds nothing but generation cost.
netlist::Design generate_scale_design(const CircuitSpec& spec) {
  util::Rng rng(spec.name);
  const geom::Rect die = geom::Rect::from_size(
      {0.0, 0.0}, spec.chip_width_um(), spec.chip_height_um());

  netlist::Design design{std::string(spec.name), die};
  design.set_default_length_limit(spec.length_limit);

  const std::vector<geom::Rect> shapes =
      slicing_floorplan(die, spec.cells, rng);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    design.add_block({std::string(spec.name) + "_b" + std::to_string(i),
                      shapes[i], /*site_fraction=*/0.05});
  }

  const std::vector<std::int32_t> fanouts =
      sink_counts(spec.nets, spec.sinks, rng);
  const double tile_side = std::sqrt(spec.tile_area_mm2) * 1000.0;  // um
  // Pareto(alpha=1.6, min=0.75 tiles): mean ~2 tiles, tail past L_i so
  // a realistic minority of nets genuinely needs buffers; capped at a
  // third of the die so locality survives the tail.
  constexpr double kParetoAlpha = 1.6;
  constexpr double kMinTiles = 0.75;
  constexpr double kGlobalNetFraction = 0.02;
  const double cap_um =
      std::min(die.width(), die.height()) / 3.0;
  auto uniform_point = [&]() -> geom::Point {
    return {die.lo().x + rng.uniform() * die.width(),
            die.lo().y + rng.uniform() * die.height()};
  };
  auto nearby_point = [&](const geom::Point& from) -> geom::Point {
    const double u = rng.uniform();
    double r_um =
        kMinTiles * tile_side * std::pow(1.0 - u, -1.0 / kParetoAlpha);
    r_um = std::min(r_um, cap_um);
    const double theta = rng.uniform() * 2.0 * 3.14159265358979323846;
    geom::Point p{from.x + r_um * std::cos(theta),
                  from.y + r_um * std::sin(theta)};
    // Reflect off the die edges rather than clamping: clamping piles
    // coincident pins onto the boundary, tripping the duplicate-sink
    // invariant.  One bounce suffices since r is capped at a third of
    // the die and `from` is interior.
    if (p.x < die.lo().x) p.x = 2.0 * die.lo().x - p.x;
    if (p.x > die.hi().x) p.x = 2.0 * die.hi().x - p.x;
    if (p.y < die.lo().y) p.y = 2.0 * die.lo().y - p.y;
    if (p.y > die.hi().y) p.y = 2.0 * die.hi().y - p.y;
    return p;
  };

  for (std::int32_t i = 0; i < spec.nets; ++i) {
    netlist::Net net;
    net.name = std::string(spec.name) + "_n" + std::to_string(i);
    const bool global_net = rng.chance(kGlobalNetFraction);
    const geom::Point src = uniform_point();
    net.source = {src, netlist::PinKind::kFree, netlist::kNoBlock};
    const std::int32_t fan = fanouts[static_cast<std::size_t>(i)];
    net.sinks.reserve(static_cast<std::size_t>(fan));
    for (std::int32_t s = 0; s < fan; ++s) {
      const geom::Point at = global_net ? uniform_point() : nearby_point(src);
      net.sinks.push_back({at, netlist::PinKind::kFree, netlist::kNoBlock});
    }
    design.add_net(std::move(net));
  }

  design.check_invariants();
  return design;
}

}  // namespace

netlist::Design generate_design(const CircuitSpec& spec) {
  if (spec.scale) return generate_scale_design(spec);
  util::Rng rng(spec.name);
  const geom::Rect die = geom::Rect::from_size(
      {0.0, 0.0}, spec.chip_width_um(), spec.chip_height_um());

  netlist::Design design{std::string(spec.name), die};
  design.set_default_length_limit(spec.length_limit);

  const std::vector<geom::Rect> shapes =
      slicing_floorplan(die, spec.cells, rng);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    design.add_block({std::string(spec.name) + "_b" + std::to_string(i),
                      shapes[i], /*site_fraction=*/0.05});
  }

  const std::vector<geom::Point> pads = pad_ring(die, spec.pads, rng);
  const std::vector<std::int32_t> fanouts =
      sink_counts(spec.nets, spec.sinks, rng);

  // Build all nets on block-boundary pins first.
  auto random_block_pin = [&]() -> netlist::Pin {
    const auto b = static_cast<netlist::BlockId>(
        rng.uniform_int(0, spec.cells - 1));
    return {boundary_point(design.block(b).shape, rng),
            netlist::PinKind::kBlock, b};
  };
  for (std::int32_t i = 0; i < spec.nets; ++i) {
    netlist::Net net;
    net.name = std::string(spec.name) + "_n" + std::to_string(i);
    net.source = random_block_pin();
    for (std::int32_t s = 0; s < fanouts[static_cast<std::size_t>(i)]; ++s) {
      net.sinks.push_back(random_block_pin());
    }
    design.add_net(std::move(net));
  }

  // Rewire `pads` distinct endpoints (source or sink slots) to the pad
  // ring so the published pad count is met exactly.
  struct Slot {
    netlist::NetId net;
    std::int32_t sink;  // -1 == source
  };
  std::vector<Slot> slots;
  for (std::int32_t i = 0; i < spec.nets; ++i) {
    slots.push_back({i, -1});
    for (std::int32_t s = 0; s < fanouts[static_cast<std::size_t>(i)]; ++s) {
      slots.push_back({i, s});
    }
  }
  RABID_ASSERT(slots.size() >= pads.size());
  util::shuffle(slots, rng);
  for (std::size_t p = 0; p < pads.size(); ++p) {
    netlist::Net& net =
        design.mutable_nets()[static_cast<std::size_t>(slots[p].net)];
    netlist::Pin pin{pads[p], netlist::PinKind::kPad, netlist::kNoBlock};
    if (slots[p].sink < 0) {
      net.source = pin;
    } else {
      net.sinks[static_cast<std::size_t>(slots[p].sink)] = pin;
    }
  }

  design.check_invariants();
  return design;
}

tile::TileGraph build_tile_graph(const netlist::Design& design,
                                 const CircuitSpec& spec,
                                 const TilingOptions& opt) {
  const std::int32_t nx = opt.nx > 0 ? opt.nx : spec.grid_x;
  const std::int32_t ny = opt.ny > 0 ? opt.ny : spec.grid_y;
  const std::int64_t sites =
      opt.buffer_sites >= 0 ? opt.buffer_sites : spec.buffer_sites;

  tile::TileGraph g(design.outline(), nx, ny);

  // The blocked "cache" region: fixed physical rectangle sized like
  // blocked_span default-grid tiles, placed by the per-circuit seed so
  // every sweep (sites, grid) blocks the same silicon.
  util::Rng rng(std::string(spec.name) + ":tiles");
  geom::Rect blocked{{0.0, 0.0}, {0.0, 0.0}};
  bool have_blocked = false;
  if (opt.blocked_span > 0) {
    const double bw =
        design.outline().width() * opt.blocked_span / spec.grid_x;
    const double bh =
        design.outline().height() * opt.blocked_span / spec.grid_y;
    const double x =
        design.outline().lo().x +
        rng.uniform() * (design.outline().width() - bw);
    const double y =
        design.outline().lo().y +
        rng.uniform() * (design.outline().height() - bh);
    blocked = geom::Rect::from_size({x, y}, bw, bh);
    have_blocked = true;
  }

  std::vector<tile::TileId> allowed;
  for (tile::TileId t = 0; t < g.tile_count(); ++t) {
    if (!have_blocked || !blocked.contains(g.center(t))) allowed.push_back(t);
  }
  RABID_ASSERT_MSG(!allowed.empty(), "blocked region covers every tile");
  for (std::int64_t s = 0; s < sites; ++s) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(allowed.size()) - 1));
    g.set_site_supply(allowed[pick], g.site_supply(allowed[pick]) + 1);
  }

  // Wire capacity: uniform, calibrated so the HPWL lower-bound demand
  // would average the congestion target.  Table-I circuits reproduce the
  // paper's comfortable regime; the scale family is deliberately tighter
  // so its hottest edges start overflowed and stage 2 is exercised for
  // real at 100k-1M nets (see TilingOptions::target_avg_congestion).
  double demand_tiles = 0.0;
  for (const netlist::Net& net : design.nets()) {
    geom::Point lo = net.source.location;
    geom::Point hi = net.source.location;
    for (const netlist::Pin& p : net.sinks) {
      lo.x = std::min(lo.x, p.location.x);
      lo.y = std::min(lo.y, p.location.y);
      hi.x = std::max(hi.x, p.location.x);
      hi.y = std::max(hi.y, p.location.y);
    }
    demand_tiles += (hi.x - lo.x) / g.tile_width() +
                    (hi.y - lo.y) / g.tile_height();
  }
  const double avg_demand = demand_tiles / g.edge_count();
  const double target = opt.target_avg_congestion > 0.0
                            ? opt.target_avg_congestion
                            : (spec.scale ? 0.55 : 0.25);
  const auto cap = static_cast<std::int32_t>(
      std::max(3.0, std::ceil(avg_demand / target)));
  g.set_uniform_wire_capacity(cap);

  if (opt.over_block_capacity_factor < 1.0) {
    RABID_ASSERT(opt.over_block_capacity_factor >= 0.0);
    auto covered = [&](tile::TileId t) {
      const geom::Point c = g.center(t);
      for (const netlist::Block& b : design.blocks()) {
        if (b.shape.contains(c)) return true;
      }
      return false;
    };
    const auto reduced = static_cast<std::int32_t>(std::max(
        1.0, std::floor(cap * opt.over_block_capacity_factor)));
    for (tile::EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto [u, v] = g.edge_tiles(e);
      if (covered(u) && covered(v)) g.set_wire_capacity(e, reduced);
    }
  }
  return g;
}

netlist::Design generate_design(const CircuitSpec& spec,
                                const DesignVariations& var) {
  netlist::Design design = generate_design(spec);
  if (var.thick_metal_fraction > 0.0) {
    RABID_ASSERT(var.thick_metal_fraction <= 1.0);
    RABID_ASSERT(var.thick_metal_scale >= 1.0);
    util::Rng rng(std::string(spec.name) + ":layers");
    const auto thick_limit = static_cast<std::int32_t>(
        static_cast<double>(design.default_length_limit()) *
            var.thick_metal_scale +
        0.5);
    for (netlist::Net& net : design.mutable_nets()) {
      if (rng.chance(var.thick_metal_fraction)) {
        net.length_limit = thick_limit;
        net.width = var.thick_metal_width;
      }
    }
  }
  return design;
}

tile::SiteMap generate_site_map(const CircuitSpec& spec,
                                const tile::TileGraph& g) {
  util::Rng rng(std::string(spec.name) + ":sitepts");
  tile::SiteMap map(g);
  for (tile::TileId t = 0; t < g.tile_count(); ++t) {
    const geom::Rect r = g.tile_rect(t);
    for (std::int32_t s = 0; s < g.site_supply(t); ++s) {
      map.add_site(t, {r.lo().x + rng.uniform() * r.width(),
                       r.lo().y + rng.uniform() * r.height()});
    }
  }
  RABID_ASSERT(map.consistent_with(g));
  return map;
}

double pct_chip_area(const CircuitSpec& spec, std::int64_t sites) {
  const double chip_um2 = spec.chip_width_um() * spec.chip_height_um();
  return 100.0 * static_cast<double>(sites) * kBufferSiteAreaUm2 / chip_um2;
}

}  // namespace rabid::circuits
