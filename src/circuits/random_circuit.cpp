#include "circuits/random_circuit.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rabid::circuits {

RandomCircuit::RandomCircuit(std::uint64_t seed,
                             const RandomCircuitOptions& opt)
    : seed_(seed), name_("fuzz-" + std::to_string(seed)) {
  RABID_ASSERT(opt.min_cells >= 1 && opt.min_cells <= opt.max_cells);
  RABID_ASSERT(opt.min_nets >= 1 && opt.min_nets <= opt.max_nets);
  RABID_ASSERT(opt.min_grid >= 2 && opt.min_grid <= opt.max_grid);
  RABID_ASSERT(opt.min_length_limit >= 1 &&
               opt.min_length_limit <= opt.max_length_limit);

  // This stream only picks the *shape* of the instance; the netlist and
  // site sprinkle draw from generate_design/build_tile_graph's own
  // name-keyed streams, exactly as for the Table-I circuits.
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  spec_.name = name_;
  spec_.cbl = false;
  spec_.cells = static_cast<std::int32_t>(
      rng.uniform_int(opt.min_cells, opt.max_cells));
  spec_.nets =
      static_cast<std::int32_t>(rng.uniform_int(opt.min_nets, opt.max_nets));
  const auto extra = static_cast<std::int32_t>(
      rng.uniform(0.0, opt.max_extra_sink_factor) * spec_.nets);
  spec_.sinks = spec_.nets + extra;
  // Pads need a distinct (source or sink) slot each: nets + sinks slots.
  spec_.pads = static_cast<std::int32_t>(
      rng.uniform_int(0, std::min(spec_.nets, 12)));
  spec_.grid_x =
      static_cast<std::int32_t>(rng.uniform_int(opt.min_grid, opt.max_grid));
  spec_.grid_y =
      static_cast<std::int32_t>(rng.uniform_int(opt.min_grid, opt.max_grid));
  const double side =
      rng.uniform(opt.min_tile_side_um, opt.max_tile_side_um);
  spec_.tile_area_mm2 = side * side * 1e-6;
  spec_.length_limit = static_cast<std::int32_t>(
      rng.uniform_int(opt.min_length_limit, opt.max_length_limit));
  const double per_tile =
      rng.uniform(opt.min_sites_per_tile, opt.max_sites_per_tile);
  spec_.buffer_sites = static_cast<std::int32_t>(
      per_tile * spec_.grid_x * spec_.grid_y);
  spec_.pct_chip_area = pct_chip_area(spec_, spec_.buffer_sites);

  tiling_ = {};
  tiling_.target_avg_congestion = opt.target_avg_congestion;
  const std::int32_t max_span = std::min(spec_.grid_x, spec_.grid_y) / 3;
  tiling_.blocked_span =
      opt.allow_blocked_region && max_span > 0
          ? static_cast<std::int32_t>(rng.uniform_int(0, max_span))
          : 0;
}

}  // namespace rabid::circuits
