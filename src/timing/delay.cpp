#include "timing/delay.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rabid::timing {

DelayResult evaluate_delay_sized(const route::RouteTree& tree,
                                 const route::BufferList& buffers,
                                 std::span<const BufferType> types,
                                 const tile::TileGraph& g,
                                 const Technology& tech) {
  RABID_ASSERT_MSG(types.size() == buffers.size(),
                   "one library cell per buffer placement");
  DelayResult result;
  if (tree.empty()) return result;

  // Index buffers by role for O(1) lookup during the walk.
  const auto n_nodes = tree.node_count();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> driving(n_nodes, kNone);
  // decoupling[child]: the buffer (index into `buffers`) driving the arc
  // parent->child, if any.
  std::vector<std::size_t> decoupling(n_nodes, kNone);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const route::BufferPlacement& b = buffers[i];
    RABID_ASSERT(b.node >= 0 && static_cast<std::size_t>(b.node) < n_nodes);
    if (b.child == route::kNoNode) {
      RABID_ASSERT_MSG(driving[static_cast<std::size_t>(b.node)] == kNone,
                       "two driving buffers on one node");
      driving[static_cast<std::size_t>(b.node)] = i;
    } else {
      RABID_ASSERT(tree.node(b.child).parent == b.node);
      RABID_ASSERT_MSG(decoupling[static_cast<std::size_t>(b.child)] == kNone,
                       "two decoupling buffers on one arc");
      decoupling[static_cast<std::size_t>(b.child)] = i;
    }
  }

  RcTree rc;
  // Electrical point of each route node (after any driving buffer).
  std::vector<RcTree::NodeId> main(n_nodes, RcTree::kNoNode);

  auto add_buffer = [&](RcTree::NodeId at, std::size_t index) {
    const BufferType& t = types[index];
    return rc.add_gate(at, t.input_cap, t.output_res, t.intrinsic_ps);
  };

  for (const route::NodeId v : tree.preorder()) {
    const route::RouteNode& node = tree.node(v);
    RcTree::NodeId attach;
    if (node.parent == route::kNoNode) {
      // Net driver: a stage root with the driver's output resistance.
      attach = rc.add_root(tech.driver_res, 0.0);
    } else {
      // Where the arc parent->v hangs on the parent's electronics.
      RcTree::NodeId from = main[static_cast<std::size_t>(node.parent)];
      if (decoupling[static_cast<std::size_t>(v)] != kNone) {
        from = add_buffer(from, decoupling[static_cast<std::size_t>(v)]);
      }
      // One tile step of wire as a pi-model.
      const auto a = g.coord_of(node.tile);
      const auto b = g.coord_of(tree.node(node.parent).tile);
      const double len_um = (a.y == b.y) ? g.tile_width() : g.tile_height();
      const double wire_r = tech.wire_res(len_um);
      const double wire_c = tech.wire_cap(len_um);
      rc.add_cap(from, wire_c / 2.0);
      attach = rc.add_node(from, wire_r, wire_c / 2.0);
    }
    if (driving[static_cast<std::size_t>(v)] != kNone) {
      attach = add_buffer(attach, driving[static_cast<std::size_t>(v)]);
    }
    main[static_cast<std::size_t>(v)] = attach;
    if (node.sink_count > 0) {
      rc.add_cap(attach, tech.sink_cap * node.sink_count);
    }
  }

  const std::vector<double> delays = rc.elmore_delays();
  for (std::size_t v = 0; v < n_nodes; ++v) {
    const std::int32_t sinks =
        tree.node(static_cast<route::NodeId>(v)).sink_count;
    if (sinks == 0) continue;
    const double d = delays[static_cast<std::size_t>(main[v])];
    for (std::int32_t k = 0; k < sinks; ++k) {
      result.sink_delays_ps.push_back(d);
      result.sum_ps += d;
      result.max_ps = std::max(result.max_ps, d);
    }
  }
  return result;
}

DelayResult evaluate_delay(const route::RouteTree& tree,
                           const route::BufferList& buffers,
                           const tile::TileGraph& g, const Technology& tech) {
  // All placements realize the unit buffer of `tech`.
  const BufferType unit{"BUF_X1", 1.0, tech.buffer_cap, tech.buffer_res,
                        tech.buffer_intrinsic_ps, false};
  const std::vector<BufferType> types(buffers.size(), unit);
  return evaluate_delay_sized(tree, buffers, types, g, tech);
}

}  // namespace rabid::timing
