#include "timing/rc_tree.hpp"

#include "util/assert.hpp"

namespace rabid::timing {

RcTree::NodeId RcTree::add_root(double drive_res, double intrinsic_ps) {
  RABID_ASSERT_MSG(nodes_.empty(), "RcTree already has a root");
  nodes_.push_back(Node{kNoNode, 0.0, 0.0, true, drive_res, intrinsic_ps});
  return 0;
}

RcTree::NodeId RcTree::add_node(NodeId parent, double res, double cap) {
  RABID_ASSERT(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()));
  RABID_ASSERT(res >= 0.0 && cap >= 0.0);
  nodes_.push_back(Node{parent, res, cap, false, 0.0, 0.0});
  return static_cast<NodeId>(nodes_.size()) - 1;
}

RcTree::NodeId RcTree::add_gate(NodeId parent, double input_cap,
                                double drive_res, double intrinsic_ps) {
  RABID_ASSERT(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()));
  nodes_[static_cast<std::size_t>(parent)].cap += input_cap;
  nodes_.push_back(Node{parent, 0.0, 0.0, true, drive_res, intrinsic_ps});
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void RcTree::add_cap(NodeId n, double cap) {
  RABID_ASSERT(n >= 0 && n < static_cast<NodeId>(nodes_.size()));
  RABID_ASSERT(cap >= 0.0);
  nodes_[static_cast<std::size_t>(n)].cap += cap;
}

std::vector<double> RcTree::stage_caps() const {
  // Children are always appended after parents, so a reverse index scan
  // is a postorder accumulation.  Gate nodes do not propagate their
  // subtree capacitance upward (their input cap is already lumped on the
  // parent by add_gate).
  std::vector<double> caps(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) caps[i] = nodes_[i].cap;
  for (std::size_t i = nodes_.size(); i-- > 1;) {
    const Node& n = nodes_[i];
    if (!n.is_gate) caps[static_cast<std::size_t>(n.parent)] += caps[i];
  }
  return caps;
}

double RcTree::stage_capacitance(NodeId n) const {
  RABID_ASSERT(n >= 0 && n < static_cast<NodeId>(nodes_.size()));
  RABID_ASSERT_MSG(nodes_[static_cast<std::size_t>(n)].is_gate,
                   "stage_capacitance queried on a non-gate node");
  return stage_caps()[static_cast<std::size_t>(n)];
}

std::vector<double> RcTree::stage_elmore() const {
  RABID_ASSERT_MSG(!nodes_.empty() && nodes_[0].is_gate,
                   "RcTree root must be a driving gate");
  const std::vector<double> caps = stage_caps();
  std::vector<double> tau(nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_gate) {
      // A fresh stage: the gate's output resistance into its stage load.
      tau[i] = n.drive_res * caps[i];
    } else {
      tau[i] = tau[static_cast<std::size_t>(n.parent)] + n.res * caps[i];
    }
  }
  return tau;
}

std::vector<double> RcTree::elmore_delays() const {
  RABID_ASSERT_MSG(!nodes_.empty() && nodes_[0].is_gate,
                   "RcTree root must be a driving gate");
  const std::vector<double> caps = stage_caps();
  std::vector<double> delay(nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const double upstream =
        (n.parent == kNoNode) ? 0.0 : delay[static_cast<std::size_t>(n.parent)];
    if (n.is_gate) {
      // New stage: gate switching delay = intrinsic + Rdrv * stage load.
      delay[i] = upstream + n.intrinsic + n.drive_res * caps[i];
    } else {
      // Within-stage Elmore: arc resistance times downstream stage cap.
      delay[i] = upstream + n.res * caps[i];
    }
  }
  return delay;
}

}  // namespace rabid::timing
