#pragma once

/// \file slew.hpp
/// Slew (transition-time) estimation — the physics behind the paper's
/// length rule.
///
/// Section II bases L_i on "a global rule of thumb for the maximum
/// distance between consecutive buffers ... necessary to ensure that the
/// slew rate is sufficiently sharp at the input to all gates" (footnote
/// 3: an IBM microprocessor derived the distance from the desired input
/// slew).  This module makes that connection concrete:
///
///  * evaluate_slews() estimates the 10-90% transition time at every
///    gate input (buffer inputs and sinks) of a buffered route with the
///    PERI approximation  slew ~= ln(9) x stage-local Elmore delay;
///  * max_interval_for_slew() inverts the model: the longest unbuffered
///    run a unit buffer may drive before the far-end slew exceeds a
///    limit — the paper's "repeaters at intervals of at most 4500 um"
///    computation, reproducible for any limit and technology.

#include <vector>

#include "route/buffers.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"
#include "timing/tech.hpp"

namespace rabid::timing {

/// ln(9): 10-90% transition of a single-pole response per unit Elmore.
inline constexpr double kSlewFactor = 2.1972245773362196;

struct SlewResult {
  double max_ps = 0.0;  ///< worst transition over all gate inputs
  double avg_ps = 0.0;
  /// One entry per *load point*: every buffer input, then every sink
  /// (same order as the buffer list, then tree sink order).
  std::vector<double> load_slews_ps;
};

/// Estimates input slews across a buffered route (unit buffers).
SlewResult evaluate_slews(const route::RouteTree& tree,
                          const route::BufferList& buffers,
                          const tile::TileGraph& g,
                          const Technology& tech = kTech180nm);

/// The longest wire (um) a unit buffer can drive into one same-size
/// buffer load before the far-end slew exceeds `slew_limit_ps`.
/// Deterministic bisection; this is the quantity a tile-based L_i
/// discretizes (L_i ~= interval / tile pitch).
double max_interval_for_slew(double slew_limit_ps,
                             const Technology& tech = kTech180nm);

/// Far-end slew (ps) of a unit buffer driving `length_um` of wire into
/// one buffer-input load.  Exposed for tests and the derivation bench.
double line_end_slew(double length_um, const Technology& tech = kTech180nm);

}  // namespace rabid::timing
