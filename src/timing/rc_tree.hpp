#pragma once

/// \file rc_tree.hpp
/// A generic staged RC tree with Elmore delay evaluation.
///
/// The tree is a chain of RC "stages" separated by gates (the net driver
/// and any inserted buffers).  A gate contributes its input capacitance
/// to the upstream stage, then starts a new stage driven through its
/// output resistance, adding its intrinsic delay.  Within a stage the
/// delay is the classic Elmore sum: each arc's resistance times the
/// capacitance downstream of it *within the stage*.

#include <cstdint>
#include <vector>

namespace rabid::timing {

class RcTree {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNoNode = -1;

  /// Creates the root, driven by a gate with output resistance
  /// `drive_res` and intrinsic delay `intrinsic_ps` (use the net driver's
  /// values; intrinsic 0 for a plain driver).
  NodeId add_root(double drive_res, double intrinsic_ps);

  /// Adds a plain RC node: `res` ohms from `parent`, `cap` pF at the node.
  NodeId add_node(NodeId parent, double res, double cap);

  /// Adds a gate (buffer) node at the same electrical location as
  /// `parent`: `input_cap` is lumped onto `parent`'s stage, and the new
  /// node starts a fresh stage behind `drive_res` with `intrinsic_ps`.
  NodeId add_gate(NodeId parent, double input_cap, double drive_res,
                  double intrinsic_ps);

  /// Lumps extra capacitance (e.g. sink loads) onto an existing node.
  void add_cap(NodeId n, double cap);

  std::size_t node_count() const { return nodes_.size(); }

  /// Elmore delay (ps) from the root gate's input to every node.
  std::vector<double> elmore_delays() const;

  /// Stage-local Elmore time constant (ps) at every node: the Elmore
  /// delay measured from the node's own stage gate, excluding that
  /// gate's intrinsic delay.  This is the tau behind the PERI slew
  /// approximation (see timing/slew.hpp).
  std::vector<double> stage_elmore() const;

  /// Total capacitance hanging in the stage rooted at `n` (n must be a
  /// stage root, i.e. the tree root or a gate node).
  double stage_capacitance(NodeId n) const;

 private:
  struct Node {
    NodeId parent = kNoNode;
    double res = 0.0;        ///< arc resistance to parent (0 for gates)
    double cap = 0.0;        ///< lumped node capacitance
    bool is_gate = false;    ///< starts a new stage
    double drive_res = 0.0;  ///< gate output resistance
    double intrinsic = 0.0;  ///< gate intrinsic delay, ps
  };
  std::vector<Node> nodes_;

  std::vector<double> stage_caps() const;
};

}  // namespace rabid::timing
