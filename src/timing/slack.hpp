#pragma once

/// \file slack.hpp
/// Floorplan-evaluation timing: turning planned net delays into the
/// worst-slack number the paper's Section II anecdote is about
/// ("a design with a desired 5-ns clock period ... one floorplan has a
/// worst slack of -40 ns while a different floorplan has -43 ns").
///
/// Early-planning model: every macro-block pin and pad is a register
/// boundary (the standard assumption before intra-block timing exists),
/// so each global net is one register-to-register stage:
///
///   slack(net) = T_clk - (T_clk2q + delay(net) + T_setup)
///
/// and the design's worst slack is the minimum over nets.  Crude — but
/// exactly crude in the way the paper argues is *useful*: before
/// buffering, every floorplan's slack is absurdly negative and ranking
/// is meaningless; after planning the numbers separate.

#include <span>
#include <vector>

#include "timing/delay.hpp"

namespace rabid::timing {

struct SlackModel {
  double clock_period_ps = 5000.0;  ///< the anecdote's 5 ns clock
  double clk_to_q_ps = 150.0;
  double setup_ps = 100.0;
};

struct SlackReport {
  double worst_ps = 0.0;        ///< min slack over all net stages
  double total_negative_ps = 0.0;  ///< sum of negative slacks (TNS)
  std::int64_t failing_nets = 0;
  std::vector<double> per_net_ps;  ///< one entry per net (worst sink)
};

/// Evaluates register-to-register slack per net from planned delays.
SlackReport evaluate_slack(std::span<const DelayResult> net_delays,
                           const SlackModel& model = {});

}  // namespace rabid::timing
