#include "timing/slack.hpp"

#include <algorithm>
#include <limits>

namespace rabid::timing {

SlackReport evaluate_slack(std::span<const DelayResult> net_delays,
                           const SlackModel& model) {
  SlackReport report;
  report.worst_ps = std::numeric_limits<double>::infinity();
  report.per_net_ps.reserve(net_delays.size());
  for (const DelayResult& d : net_delays) {
    const double slack = model.clock_period_ps -
                         (model.clk_to_q_ps + d.max_ps + model.setup_ps);
    report.per_net_ps.push_back(slack);
    report.worst_ps = std::min(report.worst_ps, slack);
    if (slack < 0.0) {
      ++report.failing_nets;
      report.total_negative_ps += slack;
    }
  }
  if (net_delays.empty()) report.worst_ps = 0.0;
  return report;
}

}  // namespace rabid::timing
