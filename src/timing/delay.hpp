#pragma once

/// \file delay.hpp
/// Elmore delay evaluation of a (possibly buffered) tile-level route.
///
/// Tables II-V report maximum and average source-to-sink delay; this is
/// the engine that produces those numbers.  Wires use a pi-model per tile
/// step; buffers follow the switch-level model of tech.hpp.

#include <span>
#include <vector>

#include "route/buffers.hpp"
#include "route/route_tree.hpp"
#include "tile/tile_graph.hpp"
#include "timing/buffer_library.hpp"
#include "timing/rc_tree.hpp"
#include "timing/tech.hpp"

namespace rabid::timing {

struct DelayResult {
  double max_ps = 0.0;
  double sum_ps = 0.0;
  std::vector<double> sink_delays_ps;  ///< one entry per net sink

  double avg_ps() const {
    return sink_delays_ps.empty()
               ? 0.0
               : sum_ps / static_cast<double>(sink_delays_ps.size());
  }
};

/// Evaluates source-to-sink Elmore delays for `tree` carrying `buffers`.
/// `buffers` entries must reference valid tree nodes/children.
/// Every buffer uses the unit repeater from `tech`.
DelayResult evaluate_delay(const route::RouteTree& tree,
                           const route::BufferList& buffers,
                           const tile::TileGraph& g,
                           const Technology& tech = kTech180nm);

/// Size-aware variant: `types[i]` is the library cell realizing
/// `buffers[i]` (see timing/buffer_library.hpp).  Requires
/// types.size() == buffers.size().
DelayResult evaluate_delay_sized(const route::RouteTree& tree,
                                 const route::BufferList& buffers,
                                 std::span<const BufferType> types,
                                 const tile::TileGraph& g,
                                 const Technology& tech = kTech180nm);

/// Shorthand for an unbuffered route.
inline DelayResult evaluate_delay(const route::RouteTree& tree,
                                  const tile::TileGraph& g,
                                  const Technology& tech = kTech180nm) {
  return evaluate_delay(tree, {}, g, tech);
}

}  // namespace rabid::timing
