#include "timing/slew.hpp"

#include <algorithm>

#include "timing/rc_tree.hpp"
#include "util/assert.hpp"

namespace rabid::timing {

SlewResult evaluate_slews(const route::RouteTree& tree,
                          const route::BufferList& buffers,
                          const tile::TileGraph& g, const Technology& tech) {
  SlewResult result;
  if (tree.empty()) return result;

  const std::size_t n_nodes = tree.node_count();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> driving(n_nodes, kNone);
  std::vector<std::size_t> decoupling(n_nodes, kNone);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const route::BufferPlacement& b = buffers[i];
    if (b.child == route::kNoNode) {
      driving[static_cast<std::size_t>(b.node)] = i;
    } else {
      decoupling[static_cast<std::size_t>(b.child)] = i;
    }
  }

  // Lower to an RcTree exactly as the delay evaluator does, remembering
  // where each buffer input and each sink hangs.
  RcTree rc;
  std::vector<RcTree::NodeId> main(n_nodes, RcTree::kNoNode);
  std::vector<RcTree::NodeId> buffer_input(buffers.size(), RcTree::kNoNode);
  std::vector<std::pair<RcTree::NodeId, std::int32_t>> sink_points;

  for (const route::NodeId v : tree.preorder()) {
    const route::RouteNode& node = tree.node(v);
    RcTree::NodeId attach;
    if (node.parent == route::kNoNode) {
      attach = rc.add_root(tech.driver_res, 0.0);
    } else {
      RcTree::NodeId from = main[static_cast<std::size_t>(node.parent)];
      if (decoupling[static_cast<std::size_t>(v)] != kNone) {
        buffer_input[decoupling[static_cast<std::size_t>(v)]] = from;
        from = rc.add_gate(from, tech.buffer_cap, tech.buffer_res,
                           tech.buffer_intrinsic_ps);
      }
      const auto a = g.coord_of(node.tile);
      const auto b = g.coord_of(tree.node(node.parent).tile);
      const double len_um = (a.y == b.y) ? g.tile_width() : g.tile_height();
      rc.add_cap(from, tech.wire_cap(len_um) / 2.0);
      attach = rc.add_node(from, tech.wire_res(len_um),
                           tech.wire_cap(len_um) / 2.0);
    }
    if (driving[static_cast<std::size_t>(v)] != kNone) {
      buffer_input[driving[static_cast<std::size_t>(v)]] = attach;
      attach = rc.add_gate(attach, tech.buffer_cap, tech.buffer_res,
                           tech.buffer_intrinsic_ps);
    }
    main[static_cast<std::size_t>(v)] = attach;
    if (node.sink_count > 0) {
      rc.add_cap(attach, tech.sink_cap * node.sink_count);
      sink_points.emplace_back(attach, node.sink_count);
    }
  }

  const std::vector<double> taus = rc.stage_elmore();
  double sum = 0.0;
  auto record = [&](RcTree::NodeId at, std::int32_t copies) {
    const double slew = kSlewFactor * taus[static_cast<std::size_t>(at)];
    for (std::int32_t k = 0; k < copies; ++k) {
      result.load_slews_ps.push_back(slew);
      sum += slew;
      result.max_ps = std::max(result.max_ps, slew);
    }
  };
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    RABID_ASSERT(buffer_input[i] != RcTree::kNoNode);
    record(buffer_input[i], 1);
  }
  for (const auto& [at, copies] : sink_points) record(at, copies);
  if (!result.load_slews_ps.empty()) {
    result.avg_ps = sum / static_cast<double>(result.load_slews_ps.size());
  }
  return result;
}

double line_end_slew(double length_um, const Technology& tech) {
  // One buffer driving a pi-model line into one buffer-input load:
  // tau = Rb*(C + Cb) + R*(C/2 + Cb).
  const double r = tech.wire_res(length_um);
  const double c = tech.wire_cap(length_um);
  const double tau = tech.buffer_res * (c + tech.buffer_cap) +
                     r * (c / 2.0 + tech.buffer_cap);
  return kSlewFactor * tau;
}

double max_interval_for_slew(double slew_limit_ps, const Technology& tech) {
  RABID_ASSERT_MSG(slew_limit_ps > line_end_slew(0.0, tech),
                   "limit below the zero-length slew; no interval exists");
  double lo = 0.0, hi = 1.0e6;  // 1 m upper bracket
  RABID_ASSERT(line_end_slew(hi, tech) > slew_limit_ps);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (line_end_slew(mid, tech) <= slew_limit_ps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rabid::timing
