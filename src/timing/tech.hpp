#pragma once

/// \file tech.hpp
/// Electrical parameters of the 0.18 um technology the experiments are
/// embedded in (Section IV embeds the benchmarks "in the same 0.18-um
/// technology used in [8]" — Cong, Kong, Pan, ICCAD'99).  The constants
/// below are the published BBP-literature values for that node.
///
/// Unit system: resistance in ohm, capacitance in pF, delay in ps
/// (1 ohm x 1 pF = 1 ps), length in um.

namespace rabid::timing {

struct Technology {
  // Wire parasitics per micrometer.
  double wire_res_per_um = 0.075;     ///< ohm/um
  double wire_cap_per_um = 0.000118;  ///< pF/um (0.118 fF/um)

  // The generic signal buffer a buffer site can realize.
  double buffer_intrinsic_ps = 36.4;  ///< intrinsic delay T_b
  double buffer_res = 180.0;          ///< output resistance R_b, ohm
  double buffer_cap = 0.0234;         ///< input capacitance C_b, pF

  // Net driver and sink models.
  double driver_res = 180.0;  ///< source driver resistance R_d, ohm
  double sink_cap = 0.0234;   ///< sink pin load C_s, pF

  double wire_res(double um) const { return wire_res_per_um * um; }
  double wire_cap(double um) const { return wire_cap_per_um * um; }
};

/// The default 0.18 um technology instance used by every experiment.
inline constexpr Technology kTech180nm{};

/// The RC model of a width-w wire class on `base`: w parallel tracks
/// halve-per-track the resistance; area capacitance grows with width
/// while the fringe component does not (C factor 0.65w + 0.35).
inline constexpr Technology scaled_for_width(const Technology& base,
                                             std::int32_t width) {
  Technology t = base;
  if (width > 1) {
    t.wire_res_per_um = base.wire_res_per_um / static_cast<double>(width);
    t.wire_cap_per_um =
        base.wire_cap_per_um * (0.65 * static_cast<double>(width) + 0.35);
  }
  return t;
}

}  // namespace rabid::timing
