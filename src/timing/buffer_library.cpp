#include "timing/buffer_library.hpp"

#include "util/assert.hpp"

namespace rabid::timing {

namespace {

BufferType scaled(std::string_view name, double size, bool inverting,
                  const Technology& tech) {
  BufferType t;
  t.name = name;
  t.size = size;
  t.input_cap = tech.buffer_cap * size;
  t.output_res = tech.buffer_res / size;
  // Inverters are a single stage: slightly quicker through.
  t.intrinsic_ps = tech.buffer_intrinsic_ps * (inverting ? 0.6 : 1.0);
  t.inverting = inverting;
  return t;
}

}  // namespace

BufferLibrary BufferLibrary::standard_180nm(const Technology& tech) {
  BufferLibrary lib;
  lib.types_ = {
      scaled("BUF_X0P5", 0.5, false, tech),
      scaled("BUF_X1", 1.0, false, tech),
      scaled("BUF_X2", 2.0, false, tech),
      scaled("BUF_X4", 4.0, false, tech),
      scaled("BUF_X8", 8.0, false, tech),
      scaled("INV_X1", 1.0, true, tech),
      scaled("INV_X2", 2.0, true, tech),
      scaled("INV_X4", 4.0, true, tech),
  };
  lib.unit_index_ = 1;
  return lib;
}

BufferLibrary BufferLibrary::unit_only(const Technology& tech) {
  BufferLibrary lib;
  lib.types_ = {scaled("BUF_X1", 1.0, false, tech)};
  lib.unit_index_ = 0;
  return lib;
}

std::span<const BufferType> BufferLibrary::buffers() const {
  std::size_t count = 0;
  while (count < types_.size() && !types_[count].inverting) ++count;
  return std::span<const BufferType>(types_.data(), count);
}

}  // namespace rabid::timing
