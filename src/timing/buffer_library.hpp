#pragma once

/// \file buffer_library.hpp
/// A small repeater library with a range of power levels.
///
/// Section I-B: a buffer site may realize "either a buffer, inverter
/// (with a range of power levels), or even a decoupling capacitor" —
/// the logical gate is chosen only when the site is assigned.  The
/// planning DP is size-agnostic (length rule); this library supports the
/// post-pass that picks a power level per inserted buffer to minimize
/// Elmore delay (see core/sizing.hpp).
///
/// Electrical scaling: a k-times buffer has output resistance R_b/k and
/// input capacitance ~k*C_b; intrinsic delay is size-independent to
/// first order.  All types fit the same 400 um^2 buffer site footprint
/// envelope except the largest, which is why power levels above ~8x are
/// not offered.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "timing/tech.hpp"

namespace rabid::timing {

struct BufferType {
  std::string_view name;
  double size = 1.0;          ///< drive strength multiple of the unit buffer
  double input_cap = 0.0;     ///< pF
  double output_res = 0.0;    ///< ohm
  double intrinsic_ps = 0.0;  ///< ps
  bool inverting = false;
};

class BufferLibrary {
 public:
  /// The standard 0.18 um library: non-inverting buffers at 0.5x, 1x,
  /// 2x, 4x, 8x the unit drive (1x == the Technology buffer), plus
  /// matching inverters at 1x/2x/4x.
  static BufferLibrary standard_180nm(const Technology& tech = kTech180nm);

  /// A degenerate library holding only the unit buffer (what the plain
  /// evaluate_delay assumes).
  static BufferLibrary unit_only(const Technology& tech = kTech180nm);

  std::span<const BufferType> types() const { return types_; }
  std::span<const BufferType> buffers() const;  ///< non-inverting prefix
  const BufferType& type(std::size_t i) const { return types_.at(i); }
  std::size_t size() const { return types_.size(); }

  /// Index of the unit (1x, non-inverting) buffer.
  std::size_t unit_index() const { return unit_index_; }

 private:
  std::vector<BufferType> types_;  // non-inverting first, by size
  std::size_t unit_index_ = 0;
};

}  // namespace rabid::timing
