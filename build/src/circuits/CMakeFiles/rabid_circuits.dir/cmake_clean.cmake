file(REMOVE_RECURSE
  "CMakeFiles/rabid_circuits.dir/floorplan.cpp.o"
  "CMakeFiles/rabid_circuits.dir/floorplan.cpp.o.d"
  "CMakeFiles/rabid_circuits.dir/generator.cpp.o"
  "CMakeFiles/rabid_circuits.dir/generator.cpp.o.d"
  "CMakeFiles/rabid_circuits.dir/specs.cpp.o"
  "CMakeFiles/rabid_circuits.dir/specs.cpp.o.d"
  "librabid_circuits.a"
  "librabid_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
