
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/floorplan.cpp" "src/circuits/CMakeFiles/rabid_circuits.dir/floorplan.cpp.o" "gcc" "src/circuits/CMakeFiles/rabid_circuits.dir/floorplan.cpp.o.d"
  "/root/repo/src/circuits/generator.cpp" "src/circuits/CMakeFiles/rabid_circuits.dir/generator.cpp.o" "gcc" "src/circuits/CMakeFiles/rabid_circuits.dir/generator.cpp.o.d"
  "/root/repo/src/circuits/specs.cpp" "src/circuits/CMakeFiles/rabid_circuits.dir/specs.cpp.o" "gcc" "src/circuits/CMakeFiles/rabid_circuits.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/rabid_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/rabid_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
