# Empty compiler generated dependencies file for rabid_circuits.
# This may be replaced when dependencies are built.
