file(REMOVE_RECURSE
  "librabid_circuits.a"
)
