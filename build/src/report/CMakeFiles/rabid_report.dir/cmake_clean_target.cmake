file(REMOVE_RECURSE
  "librabid_report.a"
)
