# Empty compiler generated dependencies file for rabid_report.
# This may be replaced when dependencies are built.
