file(REMOVE_RECURSE
  "CMakeFiles/rabid_report.dir/heatmap.cpp.o"
  "CMakeFiles/rabid_report.dir/heatmap.cpp.o.d"
  "CMakeFiles/rabid_report.dir/svg.cpp.o"
  "CMakeFiles/rabid_report.dir/svg.cpp.o.d"
  "CMakeFiles/rabid_report.dir/table.cpp.o"
  "CMakeFiles/rabid_report.dir/table.cpp.o.d"
  "librabid_report.a"
  "librabid_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
