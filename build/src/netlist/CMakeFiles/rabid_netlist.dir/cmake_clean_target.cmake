file(REMOVE_RECURSE
  "librabid_netlist.a"
)
