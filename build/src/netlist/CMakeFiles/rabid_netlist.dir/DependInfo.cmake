
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/rabid_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/rabid_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/io.cpp" "src/netlist/CMakeFiles/rabid_netlist.dir/io.cpp.o" "gcc" "src/netlist/CMakeFiles/rabid_netlist.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
