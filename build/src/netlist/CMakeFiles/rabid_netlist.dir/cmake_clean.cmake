file(REMOVE_RECURSE
  "CMakeFiles/rabid_netlist.dir/design.cpp.o"
  "CMakeFiles/rabid_netlist.dir/design.cpp.o.d"
  "CMakeFiles/rabid_netlist.dir/io.cpp.o"
  "CMakeFiles/rabid_netlist.dir/io.cpp.o.d"
  "librabid_netlist.a"
  "librabid_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
