# Empty compiler generated dependencies file for rabid_netlist.
# This may be replaced when dependencies are built.
