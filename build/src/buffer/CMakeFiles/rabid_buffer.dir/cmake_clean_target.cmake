file(REMOVE_RECURSE
  "librabid_buffer.a"
)
