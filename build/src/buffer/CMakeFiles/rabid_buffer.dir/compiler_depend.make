# Empty compiler generated dependencies file for rabid_buffer.
# This may be replaced when dependencies are built.
