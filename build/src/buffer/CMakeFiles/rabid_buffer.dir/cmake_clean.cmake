file(REMOVE_RECURSE
  "CMakeFiles/rabid_buffer.dir/brute_force.cpp.o"
  "CMakeFiles/rabid_buffer.dir/brute_force.cpp.o.d"
  "CMakeFiles/rabid_buffer.dir/insertion.cpp.o"
  "CMakeFiles/rabid_buffer.dir/insertion.cpp.o.d"
  "CMakeFiles/rabid_buffer.dir/single_sink.cpp.o"
  "CMakeFiles/rabid_buffer.dir/single_sink.cpp.o.d"
  "CMakeFiles/rabid_buffer.dir/timing_driven.cpp.o"
  "CMakeFiles/rabid_buffer.dir/timing_driven.cpp.o.d"
  "librabid_buffer.a"
  "librabid_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
