
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffer/brute_force.cpp" "src/buffer/CMakeFiles/rabid_buffer.dir/brute_force.cpp.o" "gcc" "src/buffer/CMakeFiles/rabid_buffer.dir/brute_force.cpp.o.d"
  "/root/repo/src/buffer/insertion.cpp" "src/buffer/CMakeFiles/rabid_buffer.dir/insertion.cpp.o" "gcc" "src/buffer/CMakeFiles/rabid_buffer.dir/insertion.cpp.o.d"
  "/root/repo/src/buffer/single_sink.cpp" "src/buffer/CMakeFiles/rabid_buffer.dir/single_sink.cpp.o" "gcc" "src/buffer/CMakeFiles/rabid_buffer.dir/single_sink.cpp.o.d"
  "/root/repo/src/buffer/timing_driven.cpp" "src/buffer/CMakeFiles/rabid_buffer.dir/timing_driven.cpp.o" "gcc" "src/buffer/CMakeFiles/rabid_buffer.dir/timing_driven.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/rabid_route.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/rabid_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rabid_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
