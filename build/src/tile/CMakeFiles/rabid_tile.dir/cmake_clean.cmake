file(REMOVE_RECURSE
  "CMakeFiles/rabid_tile.dir/decap.cpp.o"
  "CMakeFiles/rabid_tile.dir/decap.cpp.o.d"
  "CMakeFiles/rabid_tile.dir/sites.cpp.o"
  "CMakeFiles/rabid_tile.dir/sites.cpp.o.d"
  "CMakeFiles/rabid_tile.dir/tile_graph.cpp.o"
  "CMakeFiles/rabid_tile.dir/tile_graph.cpp.o.d"
  "librabid_tile.a"
  "librabid_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
