file(REMOVE_RECURSE
  "librabid_tile.a"
)
