# Empty compiler generated dependencies file for rabid_tile.
# This may be replaced when dependencies are built.
