file(REMOVE_RECURSE
  "librabid_util.a"
)
