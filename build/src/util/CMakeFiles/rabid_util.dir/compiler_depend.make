# Empty compiler generated dependencies file for rabid_util.
# This may be replaced when dependencies are built.
