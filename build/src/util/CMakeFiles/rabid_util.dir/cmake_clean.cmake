file(REMOVE_RECURSE
  "CMakeFiles/rabid_util.dir/rng.cpp.o"
  "CMakeFiles/rabid_util.dir/rng.cpp.o.d"
  "librabid_util.a"
  "librabid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
