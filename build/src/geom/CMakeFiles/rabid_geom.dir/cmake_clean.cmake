file(REMOVE_RECURSE
  "CMakeFiles/rabid_geom.dir/rect.cpp.o"
  "CMakeFiles/rabid_geom.dir/rect.cpp.o.d"
  "librabid_geom.a"
  "librabid_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
