# Empty compiler generated dependencies file for rabid_geom.
# This may be replaced when dependencies are built.
