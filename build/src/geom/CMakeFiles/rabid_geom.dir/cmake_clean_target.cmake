file(REMOVE_RECURSE
  "librabid_geom.a"
)
