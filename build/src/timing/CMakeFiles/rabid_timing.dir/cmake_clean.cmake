file(REMOVE_RECURSE
  "CMakeFiles/rabid_timing.dir/buffer_library.cpp.o"
  "CMakeFiles/rabid_timing.dir/buffer_library.cpp.o.d"
  "CMakeFiles/rabid_timing.dir/delay.cpp.o"
  "CMakeFiles/rabid_timing.dir/delay.cpp.o.d"
  "CMakeFiles/rabid_timing.dir/rc_tree.cpp.o"
  "CMakeFiles/rabid_timing.dir/rc_tree.cpp.o.d"
  "CMakeFiles/rabid_timing.dir/slack.cpp.o"
  "CMakeFiles/rabid_timing.dir/slack.cpp.o.d"
  "CMakeFiles/rabid_timing.dir/slew.cpp.o"
  "CMakeFiles/rabid_timing.dir/slew.cpp.o.d"
  "librabid_timing.a"
  "librabid_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
