# Empty dependencies file for rabid_timing.
# This may be replaced when dependencies are built.
