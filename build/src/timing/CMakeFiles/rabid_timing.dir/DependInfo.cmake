
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/buffer_library.cpp" "src/timing/CMakeFiles/rabid_timing.dir/buffer_library.cpp.o" "gcc" "src/timing/CMakeFiles/rabid_timing.dir/buffer_library.cpp.o.d"
  "/root/repo/src/timing/delay.cpp" "src/timing/CMakeFiles/rabid_timing.dir/delay.cpp.o" "gcc" "src/timing/CMakeFiles/rabid_timing.dir/delay.cpp.o.d"
  "/root/repo/src/timing/rc_tree.cpp" "src/timing/CMakeFiles/rabid_timing.dir/rc_tree.cpp.o" "gcc" "src/timing/CMakeFiles/rabid_timing.dir/rc_tree.cpp.o.d"
  "/root/repo/src/timing/slack.cpp" "src/timing/CMakeFiles/rabid_timing.dir/slack.cpp.o" "gcc" "src/timing/CMakeFiles/rabid_timing.dir/slack.cpp.o.d"
  "/root/repo/src/timing/slew.cpp" "src/timing/CMakeFiles/rabid_timing.dir/slew.cpp.o" "gcc" "src/timing/CMakeFiles/rabid_timing.dir/slew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/rabid_route.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/rabid_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rabid_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
