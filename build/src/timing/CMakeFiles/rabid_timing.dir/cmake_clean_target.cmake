file(REMOVE_RECURSE
  "librabid_timing.a"
)
