file(REMOVE_RECURSE
  "CMakeFiles/rabid_core.dir/congestion_post.cpp.o"
  "CMakeFiles/rabid_core.dir/congestion_post.cpp.o.d"
  "CMakeFiles/rabid_core.dir/rabid.cpp.o"
  "CMakeFiles/rabid_core.dir/rabid.cpp.o.d"
  "CMakeFiles/rabid_core.dir/site_planning.cpp.o"
  "CMakeFiles/rabid_core.dir/site_planning.cpp.o.d"
  "CMakeFiles/rabid_core.dir/sizing.cpp.o"
  "CMakeFiles/rabid_core.dir/sizing.cpp.o.d"
  "CMakeFiles/rabid_core.dir/solution_io.cpp.o"
  "CMakeFiles/rabid_core.dir/solution_io.cpp.o.d"
  "CMakeFiles/rabid_core.dir/twopath.cpp.o"
  "CMakeFiles/rabid_core.dir/twopath.cpp.o.d"
  "librabid_core.a"
  "librabid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
