
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/congestion_post.cpp" "src/core/CMakeFiles/rabid_core.dir/congestion_post.cpp.o" "gcc" "src/core/CMakeFiles/rabid_core.dir/congestion_post.cpp.o.d"
  "/root/repo/src/core/rabid.cpp" "src/core/CMakeFiles/rabid_core.dir/rabid.cpp.o" "gcc" "src/core/CMakeFiles/rabid_core.dir/rabid.cpp.o.d"
  "/root/repo/src/core/site_planning.cpp" "src/core/CMakeFiles/rabid_core.dir/site_planning.cpp.o" "gcc" "src/core/CMakeFiles/rabid_core.dir/site_planning.cpp.o.d"
  "/root/repo/src/core/sizing.cpp" "src/core/CMakeFiles/rabid_core.dir/sizing.cpp.o" "gcc" "src/core/CMakeFiles/rabid_core.dir/sizing.cpp.o.d"
  "/root/repo/src/core/solution_io.cpp" "src/core/CMakeFiles/rabid_core.dir/solution_io.cpp.o" "gcc" "src/core/CMakeFiles/rabid_core.dir/solution_io.cpp.o.d"
  "/root/repo/src/core/twopath.cpp" "src/core/CMakeFiles/rabid_core.dir/twopath.cpp.o" "gcc" "src/core/CMakeFiles/rabid_core.dir/twopath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/buffer/CMakeFiles/rabid_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rabid_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/rabid_route.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/rabid_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rabid_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
