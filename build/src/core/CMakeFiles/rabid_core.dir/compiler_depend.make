# Empty compiler generated dependencies file for rabid_core.
# This may be replaced when dependencies are built.
