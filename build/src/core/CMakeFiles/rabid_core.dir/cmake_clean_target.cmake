file(REMOVE_RECURSE
  "librabid_core.a"
)
