file(REMOVE_RECURSE
  "librabid_route.a"
)
