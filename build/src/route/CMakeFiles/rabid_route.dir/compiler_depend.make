# Empty compiler generated dependencies file for rabid_route.
# This may be replaced when dependencies are built.
