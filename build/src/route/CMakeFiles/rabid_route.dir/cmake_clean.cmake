file(REMOVE_RECURSE
  "CMakeFiles/rabid_route.dir/embed.cpp.o"
  "CMakeFiles/rabid_route.dir/embed.cpp.o.d"
  "CMakeFiles/rabid_route.dir/maze.cpp.o"
  "CMakeFiles/rabid_route.dir/maze.cpp.o.d"
  "CMakeFiles/rabid_route.dir/negotiated.cpp.o"
  "CMakeFiles/rabid_route.dir/negotiated.cpp.o.d"
  "CMakeFiles/rabid_route.dir/prim_dijkstra.cpp.o"
  "CMakeFiles/rabid_route.dir/prim_dijkstra.cpp.o.d"
  "CMakeFiles/rabid_route.dir/route_tree.cpp.o"
  "CMakeFiles/rabid_route.dir/route_tree.cpp.o.d"
  "CMakeFiles/rabid_route.dir/rsmt.cpp.o"
  "CMakeFiles/rabid_route.dir/rsmt.cpp.o.d"
  "CMakeFiles/rabid_route.dir/steiner.cpp.o"
  "CMakeFiles/rabid_route.dir/steiner.cpp.o.d"
  "librabid_route.a"
  "librabid_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
