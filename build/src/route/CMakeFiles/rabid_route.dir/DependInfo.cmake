
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/embed.cpp" "src/route/CMakeFiles/rabid_route.dir/embed.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/embed.cpp.o.d"
  "/root/repo/src/route/maze.cpp" "src/route/CMakeFiles/rabid_route.dir/maze.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/maze.cpp.o.d"
  "/root/repo/src/route/negotiated.cpp" "src/route/CMakeFiles/rabid_route.dir/negotiated.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/negotiated.cpp.o.d"
  "/root/repo/src/route/prim_dijkstra.cpp" "src/route/CMakeFiles/rabid_route.dir/prim_dijkstra.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/prim_dijkstra.cpp.o.d"
  "/root/repo/src/route/route_tree.cpp" "src/route/CMakeFiles/rabid_route.dir/route_tree.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/route_tree.cpp.o.d"
  "/root/repo/src/route/rsmt.cpp" "src/route/CMakeFiles/rabid_route.dir/rsmt.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/rsmt.cpp.o.d"
  "/root/repo/src/route/steiner.cpp" "src/route/CMakeFiles/rabid_route.dir/steiner.cpp.o" "gcc" "src/route/CMakeFiles/rabid_route.dir/steiner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tile/CMakeFiles/rabid_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rabid_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
