file(REMOVE_RECURSE
  "CMakeFiles/rabid_bbp.dir/bbp.cpp.o"
  "CMakeFiles/rabid_bbp.dir/bbp.cpp.o.d"
  "librabid_bbp.a"
  "librabid_bbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_bbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
