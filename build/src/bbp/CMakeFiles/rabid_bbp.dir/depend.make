# Empty dependencies file for rabid_bbp.
# This may be replaced when dependencies are built.
