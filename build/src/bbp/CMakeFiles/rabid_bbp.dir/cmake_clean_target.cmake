file(REMOVE_RECURSE
  "librabid_bbp.a"
)
