# CMake generated Testfile for 
# Source directory: /root/repo/src/bbp
# Build directory: /root/repo/build/src/bbp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
