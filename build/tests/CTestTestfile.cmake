# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/tile_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/bbp_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
