file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/all_circuits_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/all_circuits_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/full_flow_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/full_flow_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/golden_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/golden_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/wide_wires_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/wide_wires_test.cpp.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
