file(REMOVE_RECURSE
  "CMakeFiles/route_test.dir/route/embed_exact_test.cpp.o"
  "CMakeFiles/route_test.dir/route/embed_exact_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/embed_test.cpp.o"
  "CMakeFiles/route_test.dir/route/embed_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/maze_property_test.cpp.o"
  "CMakeFiles/route_test.dir/route/maze_property_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/maze_test.cpp.o"
  "CMakeFiles/route_test.dir/route/maze_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/negotiated_test.cpp.o"
  "CMakeFiles/route_test.dir/route/negotiated_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/prim_dijkstra_test.cpp.o"
  "CMakeFiles/route_test.dir/route/prim_dijkstra_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/route_tree_test.cpp.o"
  "CMakeFiles/route_test.dir/route/route_tree_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/rsmt_test.cpp.o"
  "CMakeFiles/route_test.dir/route/rsmt_test.cpp.o.d"
  "CMakeFiles/route_test.dir/route/steiner_test.cpp.o"
  "CMakeFiles/route_test.dir/route/steiner_test.cpp.o.d"
  "route_test"
  "route_test.pdb"
  "route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
