# Empty compiler generated dependencies file for tile_test.
# This may be replaced when dependencies are built.
