file(REMOVE_RECURSE
  "CMakeFiles/tile_test.dir/tile/decap_test.cpp.o"
  "CMakeFiles/tile_test.dir/tile/decap_test.cpp.o.d"
  "CMakeFiles/tile_test.dir/tile/edge_cases_test.cpp.o"
  "CMakeFiles/tile_test.dir/tile/edge_cases_test.cpp.o.d"
  "CMakeFiles/tile_test.dir/tile/sites_test.cpp.o"
  "CMakeFiles/tile_test.dir/tile/sites_test.cpp.o.d"
  "CMakeFiles/tile_test.dir/tile/tile_graph_test.cpp.o"
  "CMakeFiles/tile_test.dir/tile/tile_graph_test.cpp.o.d"
  "tile_test"
  "tile_test.pdb"
  "tile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
