file(REMOVE_RECURSE
  "CMakeFiles/buffer_test.dir/buffer/insertion_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer/insertion_test.cpp.o.d"
  "CMakeFiles/buffer_test.dir/buffer/length_rule_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer/length_rule_test.cpp.o.d"
  "CMakeFiles/buffer_test.dir/buffer/property_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer/property_test.cpp.o.d"
  "CMakeFiles/buffer_test.dir/buffer/shape_sweep_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer/shape_sweep_test.cpp.o.d"
  "CMakeFiles/buffer_test.dir/buffer/single_sink_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer/single_sink_test.cpp.o.d"
  "CMakeFiles/buffer_test.dir/buffer/timing_driven_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer/timing_driven_test.cpp.o.d"
  "buffer_test"
  "buffer_test.pdb"
  "buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
