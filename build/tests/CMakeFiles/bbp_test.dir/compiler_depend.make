# Empty compiler generated dependencies file for bbp_test.
# This may be replaced when dependencies are built.
