file(REMOVE_RECURSE
  "CMakeFiles/bbp_test.dir/bbp/bbp_test.cpp.o"
  "CMakeFiles/bbp_test.dir/bbp/bbp_test.cpp.o.d"
  "bbp_test"
  "bbp_test.pdb"
  "bbp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
