file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/congestion_post_test.cpp.o"
  "CMakeFiles/core_test.dir/core/congestion_post_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ordering_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ordering_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/rabid_test.cpp.o"
  "CMakeFiles/core_test.dir/core/rabid_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/rebuffer_test.cpp.o"
  "CMakeFiles/core_test.dir/core/rebuffer_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/site_planning_test.cpp.o"
  "CMakeFiles/core_test.dir/core/site_planning_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sizing_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sizing_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/solution_io_test.cpp.o"
  "CMakeFiles/core_test.dir/core/solution_io_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/twopath_optimality_test.cpp.o"
  "CMakeFiles/core_test.dir/core/twopath_optimality_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/twopath_test.cpp.o"
  "CMakeFiles/core_test.dir/core/twopath_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
