file(REMOVE_RECURSE
  "CMakeFiles/timing_test.dir/timing/buffer_library_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing/buffer_library_test.cpp.o.d"
  "CMakeFiles/timing_test.dir/timing/delay_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing/delay_test.cpp.o.d"
  "CMakeFiles/timing_test.dir/timing/elmore_reference_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing/elmore_reference_test.cpp.o.d"
  "CMakeFiles/timing_test.dir/timing/rc_tree_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing/rc_tree_test.cpp.o.d"
  "CMakeFiles/timing_test.dir/timing/slack_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing/slack_test.cpp.o.d"
  "CMakeFiles/timing_test.dir/timing/slew_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing/slew_test.cpp.o.d"
  "timing_test"
  "timing_test.pdb"
  "timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
