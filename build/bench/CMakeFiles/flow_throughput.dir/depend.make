# Empty dependencies file for flow_throughput.
# This may be replaced when dependencies are built.
