file(REMOVE_RECURSE
  "CMakeFiles/flow_throughput.dir/flow_throughput.cpp.o"
  "CMakeFiles/flow_throughput.dir/flow_throughput.cpp.o.d"
  "flow_throughput"
  "flow_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
