file(REMOVE_RECURSE
  "CMakeFiles/table1_circuits.dir/table1_circuits.cpp.o"
  "CMakeFiles/table1_circuits.dir/table1_circuits.cpp.o.d"
  "table1_circuits"
  "table1_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
