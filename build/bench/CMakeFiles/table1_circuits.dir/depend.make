# Empty dependencies file for table1_circuits.
# This may be replaced when dependencies are built.
