file(REMOVE_RECURSE
  "CMakeFiles/ablation_stages.dir/ablation_stages.cpp.o"
  "CMakeFiles/ablation_stages.dir/ablation_stages.cpp.o.d"
  "ablation_stages"
  "ablation_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
