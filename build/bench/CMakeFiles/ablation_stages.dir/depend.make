# Empty dependencies file for ablation_stages.
# This may be replaced when dependencies are built.
