# Empty compiler generated dependencies file for table3_sites.
# This may be replaced when dependencies are built.
