file(REMOVE_RECURSE
  "CMakeFiles/table3_sites.dir/table3_sites.cpp.o"
  "CMakeFiles/table3_sites.dir/table3_sites.cpp.o.d"
  "table3_sites"
  "table3_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
