file(REMOVE_RECURSE
  "CMakeFiles/slew_rule.dir/slew_rule.cpp.o"
  "CMakeFiles/slew_rule.dir/slew_rule.cpp.o.d"
  "slew_rule"
  "slew_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slew_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
