# Empty compiler generated dependencies file for slew_rule.
# This may be replaced when dependencies are built.
