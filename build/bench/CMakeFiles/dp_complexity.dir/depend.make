# Empty dependencies file for dp_complexity.
# This may be replaced when dependencies are built.
