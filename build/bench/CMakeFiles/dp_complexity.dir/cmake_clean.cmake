file(REMOVE_RECURSE
  "CMakeFiles/dp_complexity.dir/dp_complexity.cpp.o"
  "CMakeFiles/dp_complexity.dir/dp_complexity.cpp.o.d"
  "dp_complexity"
  "dp_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
