# Empty dependencies file for table2_stages.
# This may be replaced when dependencies are built.
