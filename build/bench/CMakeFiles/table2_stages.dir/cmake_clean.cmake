file(REMOVE_RECURSE
  "CMakeFiles/table2_stages.dir/table2_stages.cpp.o"
  "CMakeFiles/table2_stages.dir/table2_stages.cpp.o.d"
  "table2_stages"
  "table2_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
