file(REMOVE_RECURSE
  "CMakeFiles/table5_bbp.dir/table5_bbp.cpp.o"
  "CMakeFiles/table5_bbp.dir/table5_bbp.cpp.o.d"
  "table5_bbp"
  "table5_bbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
