# Empty compiler generated dependencies file for table5_bbp.
# This may be replaced when dependencies are built.
