file(REMOVE_RECURSE
  "CMakeFiles/table4_grids.dir/table4_grids.cpp.o"
  "CMakeFiles/table4_grids.dir/table4_grids.cpp.o.d"
  "table4_grids"
  "table4_grids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_grids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
