# Empty dependencies file for table4_grids.
# This may be replaced when dependencies are built.
