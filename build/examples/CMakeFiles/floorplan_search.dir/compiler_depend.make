# Empty compiler generated dependencies file for floorplan_search.
# This may be replaced when dependencies are built.
