file(REMOVE_RECURSE
  "CMakeFiles/floorplan_search.dir/floorplan_search.cpp.o"
  "CMakeFiles/floorplan_search.dir/floorplan_search.cpp.o.d"
  "floorplan_search"
  "floorplan_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
