
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/floorplan_search.cpp" "examples/CMakeFiles/floorplan_search.dir/floorplan_search.cpp.o" "gcc" "examples/CMakeFiles/floorplan_search.dir/floorplan_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rabid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bbp/CMakeFiles/rabid_bbp.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/rabid_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/rabid_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rabid_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/rabid_route.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/rabid_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rabid_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rabid_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rabid_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rabid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
