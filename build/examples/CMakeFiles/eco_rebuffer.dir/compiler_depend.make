# Empty compiler generated dependencies file for eco_rebuffer.
# This may be replaced when dependencies are built.
