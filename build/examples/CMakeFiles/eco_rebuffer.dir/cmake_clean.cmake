file(REMOVE_RECURSE
  "CMakeFiles/eco_rebuffer.dir/eco_rebuffer.cpp.o"
  "CMakeFiles/eco_rebuffer.dir/eco_rebuffer.cpp.o.d"
  "eco_rebuffer"
  "eco_rebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_rebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
