file(REMOVE_RECURSE
  "CMakeFiles/site_planning.dir/site_planning.cpp.o"
  "CMakeFiles/site_planning.dir/site_planning.cpp.o.d"
  "site_planning"
  "site_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
