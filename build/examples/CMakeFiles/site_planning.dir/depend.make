# Empty dependencies file for site_planning.
# This may be replaced when dependencies are built.
