file(REMOVE_RECURSE
  "CMakeFiles/floorplan_eval.dir/floorplan_eval.cpp.o"
  "CMakeFiles/floorplan_eval.dir/floorplan_eval.cpp.o.d"
  "floorplan_eval"
  "floorplan_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
