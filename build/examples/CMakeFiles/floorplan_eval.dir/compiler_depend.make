# Empty compiler generated dependencies file for floorplan_eval.
# This may be replaced when dependencies are built.
