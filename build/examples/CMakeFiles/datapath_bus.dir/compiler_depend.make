# Empty compiler generated dependencies file for datapath_bus.
# This may be replaced when dependencies are built.
