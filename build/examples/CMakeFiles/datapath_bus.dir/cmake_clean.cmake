file(REMOVE_RECURSE
  "CMakeFiles/datapath_bus.dir/datapath_bus.cpp.o"
  "CMakeFiles/datapath_bus.dir/datapath_bus.cpp.o.d"
  "datapath_bus"
  "datapath_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
