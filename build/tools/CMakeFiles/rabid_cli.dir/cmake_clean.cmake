file(REMOVE_RECURSE
  "CMakeFiles/rabid_cli.dir/rabid_cli.cpp.o"
  "CMakeFiles/rabid_cli.dir/rabid_cli.cpp.o.d"
  "rabid_cli"
  "rabid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
