# Empty dependencies file for rabid_cli.
# This may be replaced when dependencies are built.
